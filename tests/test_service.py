"""Serving-subsystem tests: single-flight, batching, eviction, fronts.

The contracts under test:

* **thundering herd** — N concurrent requests for one unfactored
  operator run exactly one builder; everyone shares its product.
* **batcher parity** — coalesced solves are bitwise-identical to
  sequential ``repro.solve`` calls in ``strict`` mode, and
  rounding-level close in ``block`` mode.
* **eviction hygiene** — dropping a cache entry releases the
  factorization (weakref dies), unpins its rank pool, and leaves
  ``/dev/shm`` exactly as found.
* **fronts** — futures, blocking, and asyncio entry points agree.
"""

import gc
import glob
import threading
import time
import weakref

import numpy as np
import pytest

import repro
from repro.api import SolveConfig
from repro.apps import LaplaceVolumeProblem
from repro.service import FactorizationCache, ServiceConfig, SolveService
from repro.tree import QuadTree
from repro.vmpi import process_backend_available
from repro.vmpi.pool import active_pools

needs_process = pytest.mark.skipif(
    not process_backend_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)


def _shm_blocks() -> set:
    return set(glob.glob("/dev/shm/psm_*"))


@pytest.fixture(scope="module")
def prob():
    return LaplaceVolumeProblem(24)


@pytest.fixture(scope="module")
def reference_xs(prob):
    """Facade solutions for seeds 0..15 (the bitwise baseline)."""
    return {i: repro.solve(prob, prob.random_rhs(i)).x for i in range(16)}


# ----------------------------------------------------------------------
# thundering herd / single flight
# ----------------------------------------------------------------------
def test_thundering_herd_single_factorization(prob, reference_xs):
    """32 concurrent requests for one unfactored operator: one build."""
    with SolveService(workers=32, batch_window=0.005, batch_mode="strict") as svc:
        futures = [svc.submit(prob, prob.random_rhs(i % 16)) for i in range(32)]
        reports = [f.result(timeout=120) for f in futures]
        st = svc.stats()
    assert st.factorizations == 1
    assert st.cache_misses == 1
    assert st.cache_hits == 31
    assert st.single_flight_waits >= 1  # some arrived while the factor ran
    assert st.completed == 32 and st.failed == 0
    for i, r in enumerate(reports):
        assert np.array_equal(r.x, reference_xs[i % 16])


def test_single_flight_failure_propagates_and_caches_nothing():
    bad = LaplaceVolumeProblem(16)
    # a tree over the wrong point set makes srs_factor raise
    bad.tree = QuadTree(np.array([[0.5, 0.5]]), 3)
    with SolveService(workers=8, batch_window=0.0) as svc:
        futures = [svc.submit(bad, bad.random_rhs(i)) for i in range(4)]
        for f in futures:
            with pytest.raises(ValueError, match="same point set"):
                f.result(timeout=60)
        assert svc.stats().failed == 4
        assert len(svc.cache) == 0  # failed builds are never cached


def test_cross_method_factorization_sharing(prob):
    """direct and pcg share the srs setup family: one factorization."""
    with SolveService(workers=4, batch_window=0.0) as svc:
        r_direct = svc.solve(prob, prob.random_rhs(0))
        r_pcg = svc.solve(prob, prob.random_rhs(1), method="pcg", tol=1e-10)
        st = svc.stats()
    assert st.factorizations == 1
    assert r_direct.cache_hit is False
    assert r_pcg.cache_hit is True
    assert r_pcg.iterations > 0 and r_pcg.converged


# ----------------------------------------------------------------------
# batching
# ----------------------------------------------------------------------
def test_strict_batching_bitwise_parity(prob, reference_xs):
    with SolveService(workers=16, batch_window=0.05, batch_mode="strict") as svc:
        # warm the cache so the batch window is the only coalescing force
        svc.solve(prob, prob.random_rhs(0))
        futures = [svc.submit(prob, prob.random_rhs(i)) for i in range(16)]
        reports = [f.result(timeout=120) for f in futures]
        st = svc.stats()
    assert st.batched_requests >= 16
    assert st.max_batch_occupancy > 1  # the window actually coalesced
    for i, r in enumerate(reports):
        assert np.array_equal(r.x, reference_xs[i])
        assert r.batch_size >= 1
        assert r.iterations == 0 and r.converged
        assert r.t_queue is not None and r.t_queue >= 0


def test_block_batching_close_and_faster_shape(prob, reference_xs):
    with SolveService(workers=16, batch_window=0.05, batch_mode="block") as svc:
        svc.solve(prob, prob.random_rhs(0))
        futures = [svc.submit(prob, prob.random_rhs(i)) for i in range(12)]
        reports = [f.result(timeout=120) for f in futures]
        st = svc.stats()
    assert st.max_batch_occupancy > 1
    for i, r in enumerate(reports):
        ref = reference_xs[i]
        rel = np.linalg.norm(r.x - ref) / np.linalg.norm(ref)
        assert rel < 1e-12  # GEMM-vs-GEMV rounding only


def test_block_batch_preserves_shapes_and_matrix_rhs(prob):
    """(N,) and (N, k) requests coalesce and come back at their shapes."""
    b1 = prob.random_rhs(1)
    b2 = prob.random_rhs(2, nrhs=3)
    with SolveService(workers=8, batch_window=0.05, batch_mode="block") as svc:
        svc.solve(prob, prob.random_rhs(0))  # warm
        f1 = svc.submit(prob, b1)
        f2 = svc.submit(prob, b2)
        x1, x2 = f1.result(timeout=120).x, f2.result(timeout=120).x
    assert x1.shape == (prob.n,)
    assert x2.shape == (prob.n, 3)
    ref2 = repro.solve(prob, b2).x
    assert np.linalg.norm(x2 - ref2) / np.linalg.norm(ref2) < 1e-12


def test_batch_max_dispatches_early(prob):
    with SolveService(workers=8, batch_window=5.0, batch_max=4, batch_mode="strict") as svc:
        svc.solve(prob, prob.random_rhs(0))  # warm
        t0 = time.perf_counter()
        futures = [svc.submit(prob, prob.random_rhs(i)) for i in range(4)]
        for f in futures:
            f.result(timeout=60)
        elapsed = time.perf_counter() - t0
    # a full batch must not wait out the 5 s window
    assert elapsed < 4.0


def test_zero_window_disables_coalescing(prob):
    with SolveService(workers=4, batch_window=0.0) as svc:
        svc.solve(prob, prob.random_rhs(0))
        futures = [svc.submit(prob, prob.random_rhs(i)) for i in range(4)]
        for f in futures:
            f.result(timeout=60)
        st = svc.stats()
    assert st.max_batch_occupancy == 1


# ----------------------------------------------------------------------
# cache eviction
# ----------------------------------------------------------------------
def test_eviction_frees_factorization(prob):
    svc = SolveService(workers=2, batch_window=0.0)
    r1 = svc.solve(prob, prob.random_rhs(0))
    ref = weakref.ref(r1.factorization)
    assert svc.stats().entries_resident == 1
    svc.cache.max_bytes = 1  # shrink the budget: next insert evicts
    other = LaplaceVolumeProblem(20)
    svc.solve(other, other.random_rhs(0))
    st = svc.stats()
    assert st.evictions == 1
    assert st.entries_resident == 1  # only the newcomer survives
    svc.close()
    del r1
    gc.collect()
    assert ref() is None  # nothing keeps the evicted factors alive


def test_lru_order_and_byte_budget():
    built = []
    cache = FactorizationCache(max_bytes=250)

    class Fact:
        def __init__(self, tag):
            self.tag = tag

        def memory_bytes(self):
            return 100

    def builder(tag):
        def build():
            built.append(tag)
            return Fact(tag)

        return build

    cache.get_or_build("a", builder("a"))
    cache.get_or_build("b", builder("b"))
    cache.get_or_build("a", builder("a2"))  # refresh a's recency
    cache.get_or_build("c", builder("c"))  # 300 bytes > 250: evict LRU=b
    assert built == ["a", "b", "c"]
    assert "a" in cache and "c" in cache and "b" not in cache
    assert cache.evictions == 1
    assert cache.bytes_resident == 200


def test_build_finishing_after_close_is_released():
    """A factorization completing post-close never stays pinned/resident."""
    cache = FactorizationCache(max_bytes=1 << 20)
    gate = threading.Event()
    results = []

    class Pool:
        pins = 0

        def pin(self):
            Pool.pins += 1

        def unpin(self):
            Pool.pins -= 1

    class Backend:
        pool = Pool()

    class Fact:
        backend = Backend()

        def memory_bytes(self):
            return 10

    def slow_build():
        gate.wait(10)
        return Fact()

    t = threading.Thread(
        target=lambda: results.append(cache.get_or_build("k", slow_build))
    )
    t.start()
    time.sleep(0.05)  # let the flight start
    cache.close()
    gate.set()
    t.join(10)
    assert results and results[0].fact is not None  # the caller still gets it
    assert len(cache) == 0  # but nothing stays resident
    assert Pool.pins == 0  # and the pool pin was released


def test_oversized_entry_stays_resident():
    cache = FactorizationCache(max_bytes=10)

    class Big:
        def memory_bytes(self):
            return 1000

    lookup = cache.get_or_build("big", Big)
    assert lookup.fact is not None
    assert "big" in cache  # the newcomer is never evicted for itself


@needs_process
def test_process_eviction_frees_shm_and_unpins_pool(prob):
    before = _shm_blocks()
    cfg = SolveConfig(method="direct", execution="process", ranks=4)
    svc = SolveService(workers=4, batch_window=0.005, batch_mode="strict")
    r1 = svc.solve(prob, prob.random_rhs(0), cfg)
    ref = repro.solve(prob, prob.random_rhs(0), cfg)
    assert np.array_equal(r1.x, ref.x)
    pools = [p for p in active_pools() if p.pinned]
    assert pools, "cached process factorization must pin its pool"
    fact_ref = weakref.ref(r1.factorization)
    # evict by shrinking the budget and inserting another entry
    svc.cache.max_bytes = 1
    other = LaplaceVolumeProblem(16)
    svc.solve(other, other.random_rhs(0), cfg)
    assert svc.stats().evictions >= 1
    svc.close()
    del r1, ref
    gc.collect()
    assert fact_ref() is None
    assert not any(p.pinned for p in active_pools())
    assert _shm_blocks() == before  # eviction leaves /dev/shm as found


@needs_process
def test_pinned_pool_survives_registry_pressure(monkeypatch, prob):
    """The pool LRU never tears down a pool backing a cached entry."""
    import repro.vmpi.pool as pool_mod

    cfg = SolveConfig(method="direct", execution="process", ranks=4)
    with SolveService(workers=2, batch_window=0.0) as svc:
        svc.solve(prob, prob.random_rhs(0), cfg)
        pinned = [p for p in active_pools() if p.pinned]
        assert len(pinned) == 1
        monkeypatch.setattr(pool_mod, "vmpi_pool_max", lambda: 1)
        # creating another pool shape would evict the LRU; the pinned
        # pool must be skipped
        other = pool_mod.get_pool(1, pinned[0].start_method, pinned[0].min_shm_bytes)
        try:
            assert pinned[0].alive
        finally:
            other.shutdown()


# ----------------------------------------------------------------------
# fronts and lifecycle
# ----------------------------------------------------------------------
def test_asyncio_front(prob, reference_xs):
    import asyncio

    async def main(svc):
        reports = await asyncio.gather(
            *(svc.asolve(prob, prob.random_rhs(i)) for i in range(6))
        )
        return reports

    with SolveService(workers=8, batch_window=0.01, batch_mode="strict") as svc:
        reports = asyncio.run(main(svc))
    for i, r in enumerate(reports):
        assert np.array_equal(r.x, reference_xs[i])


def test_submit_validates_synchronously(prob):
    with SolveService(workers=2) as svc:
        with pytest.raises(ValueError, match="unknown solve method"):
            svc.submit(prob, config=None, method="nope")
        with pytest.raises(TypeError, match="Problem"):
            svc.submit(object())
        with pytest.raises(ValueError, match="symmetric"):
            scat = repro.ScatteringProblem(16, 9.0)
            svc.submit(scat, method="pcg")


def test_closed_service_rejects(prob):
    svc = SolveService(workers=2)
    svc.close()
    with pytest.raises(RuntimeError, match="closed"):
        svc.submit(prob)


def test_default_rhs_and_report_shape(prob):
    with SolveService(workers=2, batch_window=0.0) as svc:
        report = svc.solve(prob)
        d = report.to_dict()
    assert d["cache_hit"] is False
    assert d["batch_size"] == 1
    assert "t_queue" in d
    assert report.relres < 1e-2


def test_stats_snapshot_sanity(prob):
    with SolveService(workers=4, batch_window=0.01) as svc:
        for i in range(8):
            svc.solve(prob, prob.random_rhs(i))
        st = svc.stats()
    assert st.requests == 8 and st.completed == 8
    assert 0 < st.hit_rate <= 7 / 8
    assert st.p50_latency_s is not None and st.p95_latency_s >= st.p50_latency_s
    assert st.bytes_resident > 0 and st.entries_resident == 1
    d = st.to_dict()
    assert d["hit_rate"] == st.hit_rate and "mean_batch_occupancy" in d


def test_service_config_env_defaults(monkeypatch):
    monkeypatch.setenv("REPRO_SERVICE_CACHE_BYTES", "12345")
    monkeypatch.setenv("REPRO_SERVICE_BATCH_WINDOW_MS", "7.5")
    monkeypatch.setenv("REPRO_SERVICE_BATCH_MAX", "9")
    monkeypatch.setenv("REPRO_SERVICE_BATCH_MODE", "strict")
    monkeypatch.setenv("REPRO_SERVICE_WORKERS", "3")
    cfg = ServiceConfig()
    assert cfg.cache_bytes == 12345
    assert cfg.batch_window == pytest.approx(0.0075)
    assert cfg.batch_max == 9
    assert cfg.batch_mode == "strict"
    assert cfg.workers == 3


def test_service_config_validation():
    with pytest.raises(ValueError, match="workers"):
        ServiceConfig(workers=0)
    with pytest.raises(ValueError, match="batch_max"):
        ServiceConfig(batch_max=0)


def test_concurrent_distinct_problems(prob):
    """Different operators factor independently and never cross-talk."""
    other = LaplaceVolumeProblem(20)
    with SolveService(workers=8, batch_window=0.01, batch_mode="strict") as svc:
        futures = []
        for i in range(4):
            futures.append((prob, i, svc.submit(prob, prob.random_rhs(i))))
            futures.append((other, i, svc.submit(other, other.random_rhs(i))))
        for p, i, f in futures:
            r = f.result(timeout=120)
            assert np.array_equal(r.x, repro.solve(p, p.random_rhs(i)).x)
        st = svc.stats()
    assert st.factorizations == 2
    assert st.entries_resident == 2


def test_latency_reservoir_fixed_memory():
    from repro.service.stats import _Reservoir

    r = _Reservoir(size=8)
    for i in range(1000):
        r.add(float(i))
    assert r.seen == 1000
    assert len(r.values()) == 8
    assert all(0.0 <= v < 1000.0 for v in r.values())


def test_latency_percentiles_exact_under_reservoir_size():
    from repro.service.stats import StatsCollector

    col = StatsCollector()
    for i in range(101):
        col.record_latency(i / 100.0)
    st = col.snapshot(bytes_resident=0, entries_resident=0)
    assert st.p50_latency_s == pytest.approx(0.5)
    assert st.p95_latency_s == pytest.approx(0.95)


def test_recent_request_ring_caps():
    from repro.service.stats import RECENT_REQUESTS, StatsCollector

    col = StatsCollector()
    for i in range(RECENT_REQUESTS + 8):
        col.record_request(request_id=f"r{i}", status="ok")
    recent = col.recent_requests()
    assert len(recent) == RECENT_REQUESTS
    assert recent[0]["request_id"] == "r8"  # oldest evicted
    assert recent[-1]["request_id"] == f"r{RECENT_REQUESTS + 7}"


def test_stats_carry_health_and_recent_requests(prob):
    bad = LaplaceVolumeProblem(16)
    # a tree over the wrong point set makes srs_factor raise
    bad.tree = QuadTree(np.array([[0.5, 0.5]]), 3)
    with SolveService(workers=2) as svc:
        svc.solve(prob, prob.random_rhs(0))
        with pytest.raises(ValueError, match="same point set"):
            svc.solve(bad, bad.random_rhs(0))
        st = svc.stats()
        recent = svc.recent_requests()
    assert st.health is not None and st.health["levels"]
    assert st.to_dict()["health"]["levels"]
    ok = [r for r in recent if r["status"] == "ok"]
    failed = [r for r in recent if r["status"] == "error"]
    assert ok and ok[-1]["duration_s"] >= 0 and ok[-1]["spans"]
    assert failed and "error" in failed[-1]
