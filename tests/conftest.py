"""Shared fixtures: point sets, kernels, and (expensive) factorizations."""

from __future__ import annotations

import numpy as np
import pytest

from repro.core import SRSOptions, srs_factor
from repro.geometry import uniform_grid
from repro.kernels import (
    GaussianKernelMatrix,
    HelmholtzKernelMatrix,
    LaplaceKernelMatrix,
    dense_matrix,
)
from repro.kernels.helmholtz import gaussian_bump


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0xC0FFEE)


@pytest.fixture(scope="session")
def grid16():
    return uniform_grid(16)


@pytest.fixture(scope="session")
def grid32():
    return uniform_grid(32)


@pytest.fixture(scope="session")
def laplace32():
    return LaplaceKernelMatrix(uniform_grid(32), 1.0 / 32)


@pytest.fixture(scope="session")
def laplace32_dense(laplace32):
    return dense_matrix(laplace32)


@pytest.fixture(scope="session")
def helmholtz24():
    pts = uniform_grid(24)
    return HelmholtzKernelMatrix(pts, 1.0 / 24, 8.0, b=gaussian_bump(pts))


@pytest.fixture(scope="session")
def helmholtz24_dense(helmholtz24):
    return dense_matrix(helmholtz24)


@pytest.fixture(scope="session")
def gaussian16():
    return GaussianKernelMatrix(uniform_grid(16), 1.0 / 16, sigma=0.05, shift=1.0)


@pytest.fixture(scope="session")
def gaussian16_dense(gaussian16):
    return dense_matrix(gaussian16)


@pytest.fixture(scope="session")
def laplace32_fact(laplace32):
    return srs_factor(laplace32, opts=SRSOptions(tol=1e-9, leaf_size=32))
