"""Cross-strategy parity suite for the unified ``repro.solve`` pipeline.

Every registered method must produce the same solution (to its
tolerance) on one volume problem and one BIE problem, return a
well-formed :class:`SolveReport`, and agree bitwise-or-tolerance with
the legacy call path it replaced. The registry must reject unknown
method/execution names with errors that name the alternatives.
"""

import numpy as np
import pytest

import repro
from repro import SolveConfig, Solver, solve
from repro.api import (
    ProblemBase,
    SolverStrategy,
    StrategyResult,
    available_methods,
    check_problem,
    register_strategy,
    resolve_strategy,
)
from repro.api.strategies import _REGISTRY, DenseLUFactorization, resolve_execution
from repro.bie import InteriorDirichletProblem, StarCurve
from repro.core import SRSOptions, srs_factor
from repro.iterative import cg
from repro.kernels.base import dense_matrix


@pytest.fixture(scope="module")
def volume():
    prob = repro.LaplaceVolumeProblem(16)
    b = prob.random_rhs(seed=3)
    x_ref = np.linalg.solve(dense_matrix(prob.kernel), b)
    return prob, b, x_ref


@pytest.fixture(scope="module")
def boundary():
    prob = InteriorDirichletProblem(StarCurve(1.0, 0.3, 5), 256)
    b = prob.default_rhs()
    x_ref = np.linalg.solve(dense_matrix(prob.kernel), b)
    return prob, b, x_ref


def check_report(report, config: SolveConfig, n: int) -> None:
    """A SolveReport is well-formed whatever strategy produced it."""
    assert report.x.shape[0] == n
    assert report.method == config.method
    assert report.execution in ("sequential", "thread", "process")
    assert np.isfinite(report.relres)
    assert report.iterations >= 0
    assert isinstance(report.converged, bool)
    assert report.t_setup >= 0.0 and report.t_solve >= 0.0
    assert report.memory_bytes is not None and report.memory_bytes > 0
    assert report.factorization is not None
    assert len(report.residual_history) >= 1
    assert report.summary()  # renders
    if report.execution == "sequential":
        assert report.sim_t_fact is None and report.messages is None
    else:
        assert report.sim_t_fact is not None and report.sim_t_fact > 0
        assert report.messages is not None and report.comm_bytes is not None
        assert report.sim_t_comp is not None and report.sim_t_other is not None


# ----------------------------------------------------------------------
# cross-strategy parity
# ----------------------------------------------------------------------
VOLUME_CONFIGS = [
    SolveConfig(method="direct"),
    SolveConfig(method="pcg", tol=1e-12),
    SolveConfig(method="pgmres", tol=1e-12),
    SolveConfig(method="dense_lu"),
    SolveConfig(method="block_jacobi", tol=1e-11, maxiter=4000),
    SolveConfig(method="direct", execution="thread", ranks=4),
    SolveConfig(method="pcg", tol=1e-12, execution="thread", ranks=4),
]


@pytest.mark.parametrize("config", VOLUME_CONFIGS, ids=lambda c: f"{c.method}-{c.execution}")
def test_volume_parity(volume, config):
    prob, b, x_ref = volume
    report = solve(prob, b, config)
    check_report(report, config, prob.n)
    scale = np.linalg.norm(x_ref)
    # direct applies the eps=1e-6 compressed inverse once; iterative
    # methods refine to their (much tighter) tolerance
    tol = 1e-3 if config.method == "direct" else 1e-6
    assert np.linalg.norm(report.x - x_ref) / scale < tol
    if config.method != "direct":
        assert report.converged


BOUNDARY_CONFIGS = [
    SolveConfig(method="direct", srs=SRSOptions(tol=1e-10)),
    SolveConfig(method="pgmres", tol=1e-12, srs=SRSOptions(tol=1e-8)),
    SolveConfig(method="dense_lu"),
    SolveConfig(method="block_jacobi", tol=1e-12, maxiter=4000),
    SolveConfig(method="direct", execution="thread", ranks=4, srs=SRSOptions(tol=1e-10)),
]


@pytest.mark.parametrize("config", BOUNDARY_CONFIGS, ids=lambda c: f"{c.method}-{c.execution}")
def test_boundary_parity(boundary, config):
    prob, b, x_ref = boundary
    report = solve(prob, b, config)
    check_report(report, config, prob.n)
    scale = np.linalg.norm(x_ref)
    assert np.linalg.norm(report.x - x_ref) / scale < 1e-6


def test_pcg_rejects_nonsymmetric(boundary):
    prob, b, _ = boundary
    with pytest.raises(ValueError, match="pcg.*symmetric.*pgmres"):
        solve(prob, b, SolveConfig(method="pcg"))
    # rejected up front: no factorization is ever built
    with pytest.raises(ValueError, match="pcg.*symmetric"):
        Solver(prob, method="pcg")


def test_operator_string_is_config_shorthand(boundary):
    """solve(..., operator="treecode") selects the treecode matvec."""
    prob, b, x_ref = boundary
    report = solve(
        prob, b, method="pgmres", operator="treecode", tol=1e-10,
        srs=SRSOptions(tol=1e-8),
    )
    assert report.config.operator == "treecode"
    assert np.linalg.norm(report.x - x_ref) / np.linalg.norm(x_ref) < 1e-5
    with pytest.raises(ValueError, match="unknown operator"):
        solve(prob, b, method="pgmres", operator="bogus")


# ----------------------------------------------------------------------
# legacy-path equivalence (the shims must not change numerics)
# ----------------------------------------------------------------------
def test_direct_matches_legacy_bitwise(volume):
    prob, b, _ = volume
    legacy = srs_factor(prob.kernel, opts=SRSOptions()).solve(b)
    report = solve(prob, b, SolveConfig(method="direct"))
    assert np.array_equal(report.x, legacy)


def test_pcg_matches_legacy_bitwise(volume):
    prob, b, _ = volume
    fact = srs_factor(prob.kernel, opts=SRSOptions())
    legacy = cg(prob.matvec, b, preconditioner=fact.solve, tol=1e-12, maxiter=500)
    report = solve(prob, b, SolveConfig(method="pcg", tol=1e-12), factorization=fact)
    assert np.array_equal(report.x, legacy.x)
    assert report.iterations == legacy.iterations
    # ... and the shim itself returns the identical CGResult shape
    shim = prob.pcg(fact, b)
    assert np.array_equal(shim.x, legacy.x)
    assert shim.residual_history == legacy.residual_history


def test_dense_lu_matches_legacy(boundary):
    prob, b, x_ref = boundary
    shim = prob.solve_dense(b)
    assert np.allclose(shim, x_ref, rtol=1e-10, atol=1e-12)


# ----------------------------------------------------------------------
# registry behavior
# ----------------------------------------------------------------------
def test_unknown_method_rejected():
    with pytest.raises(ValueError, match="unknown solve method 'bogus'.*direct"):
        SolveConfig(method="bogus")
    with pytest.raises(ValueError, match="unknown solve method"):
        resolve_strategy("also-bogus")


def test_unknown_execution_rejected():
    with pytest.raises(ValueError, match="unknown execution 'bogus'.*sequential"):
        SolveConfig(execution="bogus")
    with pytest.raises(ValueError, match="unknown execution"):
        resolve_execution("bogus")


def test_unknown_operator_rejected():
    with pytest.raises(ValueError, match="unknown operator"):
        SolveConfig(operator="bogus")


def test_sequential_only_methods_reject_parallel(volume):
    prob, b, _ = volume
    for method in ("dense_lu", "block_jacobi"):
        with pytest.raises(ValueError, match=f"{method}.*sequential"):
            solve(prob, b, SolveConfig(method=method, execution="thread"))


def test_available_methods_lists_builtins():
    names = available_methods()
    for name in ("direct", "pcg", "pgmres", "dense_lu", "block_jacobi", "cg", "gmres"):
        assert name in names


# ----------------------------------------------------------------------
# unpreconditioned Krylov baselines
# ----------------------------------------------------------------------
def test_unpreconditioned_cg_matches_reference(volume):
    prob, b, x_ref = volume
    report = solve(prob, b, SolveConfig(method="cg", tol=1e-12))
    assert report.method == "cg" and report.converged
    assert report.iterations > 0
    assert report.memory_bytes == 0  # identity preconditioner stores nothing
    assert np.linalg.norm(report.x - x_ref) / np.linalg.norm(x_ref) < 1e-9
    # unpreconditioned needs more iterations than RS-S-preconditioned
    pcg = solve(prob, b, SolveConfig(method="pcg", tol=1e-12))
    assert report.iterations >= pcg.iterations


def test_unpreconditioned_gmres_matches_reference(boundary):
    prob, b, x_ref = boundary
    report = solve(prob, b, SolveConfig(method="gmres", tol=1e-10))
    assert report.method == "gmres" and report.converged
    assert report.iterations > 0
    assert np.linalg.norm(report.x - x_ref) / np.linalg.norm(x_ref) < 1e-7


def test_cg_rejects_nonsymmetric(boundary):
    prob, b, _ = boundary
    with pytest.raises(ValueError, match="symmetric.*gmres"):
        solve(prob, b, SolveConfig(method="cg"))


def test_unpreconditioned_methods_are_sequential_only(volume):
    prob, b, _ = volume
    for method in ("cg", "gmres"):
        with pytest.raises(ValueError, match=f"{method}.*sequential"):
            solve(prob, b, SolveConfig(method=method, execution="thread"))


# ----------------------------------------------------------------------
# SolveReport.to_json
# ----------------------------------------------------------------------
def test_report_to_json_roundtrips(volume):
    import json

    prob, b, _ = volume
    report = solve(prob, b, SolveConfig(method="pcg", tol=1e-10))
    data = json.loads(report.to_json())
    assert data["method"] == "pcg"
    assert data["execution"] == "sequential"
    assert data["n"] == prob.n and data["nrhs"] == 1
    assert data["iterations"] == report.iterations
    assert data["converged"] is True
    assert data["relres"] == report.relres
    assert data["memory_bytes"] == report.memory_bytes
    assert data["residual_history"] == [float(r) for r in report.krylov.residual_history]
    # without relres evaluation the record is free (no operator apply)
    lazy = json.loads(
        solve(prob, b, SolveConfig(method="direct")).to_json(include_relres=False)
    )
    assert "relres" not in lazy and "residual_history" not in lazy


def test_report_to_json_parallel_fields(volume):
    import json

    prob, b, _ = volume
    report = solve(prob, b, SolveConfig(execution="thread", ranks=4))
    data = json.loads(report.to_json(include_relres=False))
    assert data["execution"] == "thread"
    assert data["sim_t_fact"] > 0
    assert data["messages"] > 0 and data["comm_bytes"] > 0


def test_register_custom_strategy(volume):
    prob, b, _ = volume

    @register_strategy
    class EchoStrategy(SolverStrategy):
        name = "echo-test"

        def setup(self, problem, config):
            return DenseLUFactorization(problem.kernel)

        def run(self, problem, b, fact, config, operator=None):
            return StrategyResult(fact.solve(b), 0, True, None)

    try:
        report = solve(prob, b, SolveConfig(method="echo-test"))
        assert report.method == "echo-test"
        assert report.relres < 1e-12
    finally:
        del _REGISTRY["echo-test"]


# ----------------------------------------------------------------------
# problem protocol + Solver caching
# ----------------------------------------------------------------------
def test_check_problem_names_missing_members():
    class NotAProblem:
        pass

    with pytest.raises(TypeError, match="kernel"):
        check_problem(NotAProblem())
    with pytest.raises(TypeError, match="Problem"):
        solve(NotAProblem(), np.zeros(3))


def test_problem_base_defaults(volume):
    prob, _, _ = volume
    assert prob.factor_tree is None
    assert prob.parallel_domain is None
    assert prob.is_symmetric
    assert callable(prob.operator())
    # ProblemBase fallback rhs on a minimal custom problem
    class Custom(ProblemBase):
        def __init__(self, kernel):
            self.kernel = kernel
            self.matvec = lambda x: x

        @property
        def n(self):
            return self.kernel.n

    c = Custom(prob.kernel)
    check_problem(c)
    assert c.random_rhs(seed=1, nrhs=2).shape == (prob.n, 2)
    assert c.default_rhs().shape == (prob.n,)


def test_solver_caches_factorization(volume):
    prob, b, _ = volume
    solver = Solver(prob, method="pcg", tol=1e-10)
    r1 = solver.solve(b)
    fact = solver.factorization
    r2 = solver.solve(prob.random_rhs(seed=7), tol=1e-6)
    assert solver.factorization is fact  # tolerance refinement reuses it
    assert solver.setup_time is not None and solver.setup_time > 0
    assert r1.t_setup == 0.0 and r2.t_setup == 0.0
    assert r2.config.tol == 1e-6 and solver.config.tol == 1e-10
    assert r1.converged and r2.converged


def test_solve_default_rhs_and_overrides(volume):
    prob, _, _ = volume
    report = solve(prob, method="pcg", tol=1e-8, maxiter=50)
    assert report.converged
    assert report.config.tol == 1e-8


def test_rhs_shape_mismatch_rejected(volume):
    prob, _, _ = volume
    with pytest.raises(ValueError, match="rows"):
        solve(prob, np.zeros(7))


def test_multiple_rhs_block(volume):
    prob, _, _ = volume
    B = prob.random_rhs(seed=5, nrhs=3)
    report = solve(prob, B)
    assert report.x.shape == B.shape


# ----------------------------------------------------------------------
# auto execution
# ----------------------------------------------------------------------
def test_auto_execution_resolves(volume):
    prob, b, _ = volume
    assert resolve_execution("auto") in ("thread", "process")
    report = solve(prob, b, SolveConfig(execution="auto", ranks=4))
    assert report.execution in ("thread", "process")
    check_report(report, SolveConfig(execution="auto", ranks=4), prob.n)


def test_auto_env_backend(monkeypatch):
    from repro.util.config import vmpi_backend
    from repro.vmpi.backend import auto_backend_name, resolve_backend

    monkeypatch.setenv("REPRO_VMPI_BACKEND", "auto")
    assert vmpi_backend() == "auto"
    assert resolve_backend(None).name == auto_backend_name()
    assert resolve_backend("auto").name in ("thread", "process")


# ----------------------------------------------------------------------
# shared-memory execution mode
# ----------------------------------------------------------------------
def test_shared_execution_bitwise_matches_sequential(volume):
    """The box-coloring comparator runs the same sequential core.

    The comparator factors strict by construction (it measures per-box
    task durations), so the sequential reference pins strict too —
    bitwise identity must hold regardless of REPRO_FACTOR_MODE.
    """
    prob, b, _ = volume
    seq = solve(prob, b, SolveConfig(execution="sequential", factor_mode="strict"))
    shared = solve(prob, b, SolveConfig(execution="shared", ranks=8, factor_mode="strict"))
    assert np.array_equal(seq.x, shared.x)
    assert shared.execution == "shared"
    assert shared.sim_t_fact is not None and shared.sim_t_fact > 0
    assert shared.sim_t_solve is not None and shared.sim_t_solve > 0
    assert shared.messages == 0 and shared.comm_bytes == 0
    assert shared.memory_bytes == seq.memory_bytes


def test_shared_execution_bie(boundary):
    prob, b, x_ref = boundary
    report = solve(
        prob, b, SolveConfig(execution="shared", ranks=4, srs=SRSOptions(tol=1e-10))
    )
    assert np.allclose(report.x, x_ref, rtol=1e-6, atol=1e-8)
    from repro.parallel.shared import SharedMemoryResult

    assert isinstance(report.factorization, SharedMemoryResult)


def test_shared_execution_preconditions_krylov(volume):
    prob, b, _ = volume
    report = solve(
        prob, b, SolveConfig(method="pcg", execution="shared", ranks=4, tol=1e-10)
    )
    assert report.converged and report.iterations > 0
    assert report.relres < 1e-9


def test_shared_execution_rejected_by_sequential_only_methods(volume):
    prob, b, _ = volume
    with pytest.raises(ValueError, match="sequential"):
        solve(prob, b, SolveConfig(method="dense_lu", execution="shared"))


def test_shared_solver_caches_comparator(volume):
    prob, b, _ = volume
    solver = Solver(prob, SolveConfig(execution="shared", ranks=4))
    r1 = solver.solve(b)
    r2 = solver.solve(prob.random_rhs(seed=9))
    assert r1.factorization is r2.factorization
    assert r2.t_setup == 0.0
