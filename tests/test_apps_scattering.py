"""Tests for the Lippmann-Schwinger scattering application (Sec. V-B)."""

import numpy as np
import pytest

from repro.apps import ScatteringProblem, plane_wave
from repro.core import SRSOptions


@pytest.fixture(scope="module")
def prob():
    return ScatteringProblem(24, 10.0)


@pytest.fixture(scope="module")
def fact(prob):
    return prob.factor(SRSOptions(tol=1e-6, leaf_size=36))


def test_plane_wave_properties():
    pts = np.array([[0.0, 0.0], [1.0, 0.0], [0.0, 1.0]])
    u = plane_wave(pts, 2 * np.pi)
    assert np.allclose(np.abs(u), 1.0)
    assert u[0] == pytest.approx(1.0)
    assert u[1] == pytest.approx(np.exp(2j * np.pi))
    assert u[2] == pytest.approx(1.0)  # direction is x


def test_direct_solve_second_kind_accuracy(prob, fact):
    """Second-kind IE: relres tracks eps closely (Table VI rows)."""
    b = prob.rhs()
    mu = fact.solve(b)
    assert prob.relres(mu, b) < 1e-4


def test_pgmres_few_iterations(prob, fact):
    """Paper Table IV: ~3 preconditioned GMRES iterations to 1e-12."""
    b = prob.rhs()
    res = prob.pgmres(fact, b)
    assert res.converged
    assert res.iterations <= 6


def test_unpreconditioned_gmres_much_slower(prob, fact):
    """Table V: unpreconditioned GMRES(20) needs many more iterations.

    At this scaled-down kappa the contrast is a factor of a few; the
    paper's orders-of-magnitude gap appears at higher frequency (the
    Table 5 bench sweeps kappa ~ sqrt(N)).
    """
    b = prob.rhs()
    pre = prob.pgmres(fact, b)
    plain = prob.unpreconditioned_gmres(b, tol=1e-8, maxiter=3000)
    assert plain.iterations > 2 * max(pre.iterations, 1)


def test_total_field_satisfies_equation(prob, fact):
    """sigma = -kappa^2 b u  must hold for the computed total field."""
    b = prob.rhs()
    mu = prob.pgmres(fact, b).x
    u = prob.total_field(mu)
    sigma = prob.sigma_from_mu(mu)
    resid = np.linalg.norm(sigma + prob.kappa**2 * prob.b * u) / np.linalg.norm(sigma)
    assert resid < 1e-8


def test_field_grids_shape(prob, fact):
    mu = fact.solve(prob.rhs())
    assert prob.field_magnitude_grid(mu).shape == (24, 24)
    assert prob.potential_grid().shape == (24, 24)
    assert prob.potential_grid().max() <= 1.0


def test_shadow_side_differs_from_lit_side(prob, fact):
    """Scattering must break left-right symmetry of |u| (Fig. 7b)."""
    mu = prob.pgmres(fact, prob.rhs()).x
    mag = prob.field_magnitude_grid(mu)
    left = mag[:6, :].mean()
    right = mag[-6:, :].mean()
    assert abs(left - right) > 1e-3


def test_increasing_frequency_constructor():
    prob = ScatteringProblem.increasing_frequency(16, points_per_wavelength=32.0)
    assert prob.kernel.points_per_wavelength() == pytest.approx(32.0)
    # paper's Table V: kappa = pi sqrt(N) / 16 at 32 points per wavelength
    assert prob.kappa == pytest.approx(np.pi * 16 / 16)


def test_random_rhs_complex(prob):
    b = prob.random_rhs(nrhs=2)
    assert b.shape == (prob.n, 2)
    assert np.iscomplexobj(b)


def test_invalid_parameters():
    with pytest.raises(ValueError):
        ScatteringProblem(2, 5.0)
    with pytest.raises(ValueError):
        ScatteringProblem(16, -1.0)
