"""Tests for the singular self-quadrature (polar, analytic radial)."""

import numpy as np
import pytest
from scipy import integrate

from repro.kernels.selfquad import (
    log_radial_primitive,
    log_square_self_integral,
    log_square_self_integral_exact,
    square_self_integral,
)


@pytest.mark.parametrize("h", [1.0, 0.1, 1e-3, 1e-6])
def test_log_integral_matches_closed_form(h):
    assert log_square_self_integral(h) == pytest.approx(
        log_square_self_integral_exact(h), rel=1e-13
    )


def test_log_integral_matches_scipy_dblquad():
    # integrate one quadrant (singularity sits at the corner, which
    # Gauss-Kronrod nodes never sample) and use symmetry
    h = 0.25
    val, _err = integrate.dblquad(
        lambda y, x: np.log(np.hypot(x, y)),
        0.0,
        h / 2,
        lambda x: 0.0,
        lambda x: h / 2,
    )
    assert log_square_self_integral(h) == pytest.approx(4 * val, rel=1e-9)


def test_log_radial_primitive_is_antiderivative():
    # d/dR P(R) = R ln R
    r = 0.37
    eps = 1e-7
    deriv = (log_radial_primitive(r + eps) - log_radial_primitive(r - eps)) / (2 * eps)
    assert deriv == pytest.approx(r * np.log(r), rel=1e-6)


def test_smooth_kernel_exact():
    # K(r) = r^2 -> primitive R^4/4; integral over square is analytic:
    # int x^2+y^2 over [-a,a]^2 = 8 a^4 / 3 with a = h/2
    h = 0.8
    val = square_self_integral(lambda r: r**4 / 4.0, h)
    a = h / 2
    assert val.real == pytest.approx(8 * a**4 / 3, rel=1e-12)
    assert val.imag == 0.0


def test_constant_kernel_gives_area():
    # K(r) = 1 -> primitive R^2/2 -> integral = h^2
    h = 0.33
    val = square_self_integral(lambda r: r**2 / 2.0, h)
    assert val.real == pytest.approx(h * h, rel=1e-12)


def test_invalid_cell_size():
    with pytest.raises(ValueError):
        square_self_integral(log_radial_primitive, 0.0)


def test_scaling_relation():
    # integral of ln r over a square of side h scales as
    # I(h) = h^2 (ln h + c); check I(2h) - 4 I(h) = 4 h^2 ln 2 ... derive:
    h = 0.05
    i1 = log_square_self_integral(h)
    i2 = log_square_self_integral(2 * h)
    assert i2 - 4 * i1 == pytest.approx(4 * h * h * np.log(2), rel=1e-10)
