"""Geometry tests for the BIE curve classes."""

import numpy as np
import pytest

from repro.bie import Circle, Ellipse, Kite, StarCurve, trapezoid_nodes

CURVES = {
    "circle": Circle(0.8, center=(0.2, -0.1)),
    "ellipse": Ellipse(1.0, 0.4),
    "star": StarCurve(1.0, 0.3, 5),
    "kite": Kite(),
}


@pytest.fixture(params=list(CURVES), ids=list(CURVES))
def curve(request):
    return CURVES[request.param]


def test_closed(curve):
    t = np.array([0.0, 2.0 * np.pi])
    p = curve.point(t)
    assert np.allclose(p[0], p[1], atol=1e-14)


def test_velocity_matches_finite_difference(curve):
    t = np.linspace(0.3, 5.9, 17)
    eps = 1e-6
    fd = (curve.point(t + eps) - curve.point(t - eps)) / (2 * eps)
    assert np.allclose(curve.velocity(t), fd, atol=1e-7)


def test_acceleration_matches_finite_difference(curve):
    t = np.linspace(0.3, 5.9, 17)
    eps = 1e-5
    fd = (curve.point(t + eps) - 2 * curve.point(t) + curve.point(t - eps)) / eps**2
    assert np.allclose(curve.acceleration(t), fd, atol=1e-4)


def test_normals_are_unit_and_orthogonal(curve):
    t = np.linspace(0.0, 2 * np.pi, 50, endpoint=False)
    n = curve.normal(t)
    v = curve.velocity(t)
    assert np.allclose(np.hypot(n[:, 0], n[:, 1]), 1.0, atol=1e-13)
    assert np.allclose(np.sum(n * v, axis=1), 0.0, atol=1e-12)


def test_normals_point_outward(curve):
    """Stepping along +n must leave the interior (increase the winding
    distance from an interior point, measured via the polygon test)."""
    t = np.linspace(0.0, 2 * np.pi, 33, endpoint=False)
    p = curve.point(t)
    n = curve.normal(t)
    c = curve.interior_point()
    # signed area of the discretized curve: positive for counterclockwise
    poly = curve.point(np.linspace(0, 2 * np.pi, 400, endpoint=False))
    area = 0.5 * np.sum(
        poly[:, 0] * np.roll(poly[:, 1], -1) - np.roll(poly[:, 0], -1) * poly[:, 1]
    )
    assert area > 0, "curves must be parametrized counterclockwise"
    # outward normal has positive component along (x - c) on star-shaped curves
    assert np.all(np.sum(n * (p - c), axis=1) > 0)


def test_circle_curvature_and_length():
    c = Circle(0.5)
    t = np.linspace(0, 2 * np.pi, 16, endpoint=False)
    assert np.allclose(c.curvature(t), 2.0)
    assert np.isclose(c.arc_length(), np.pi)


def test_ellipse_curvature_at_axes():
    e = Ellipse(2.0, 1.0)
    t = np.array([0.0, np.pi / 2])
    # kappa = a / b^2 at the end of the minor axis, b / a^2 at the major
    assert np.allclose(e.curvature(t), [2.0 / 1.0, 1.0 / 4.0])


def test_discretization_weights_sum_to_perimeter(curve):
    bd = curve.discretize(256)
    assert np.isclose(bd.weights.sum(), curve.arc_length(4096), rtol=1e-10)
    assert bd.points.shape == (256, 2)
    assert bd.normals.shape == (256, 2)
    assert bd.max_spacing() > 0


def test_interior_point_is_inside():
    star = StarCurve(1.0, 0.3, 5)
    c = star.interior_point()
    # the centroid is within the minimum radius of the star
    assert np.hypot(*c) < 0.7


def test_validation_errors():
    with pytest.raises(ValueError):
        Circle(-1.0)
    with pytest.raises(ValueError):
        Ellipse(1.0, 0.0)
    with pytest.raises(ValueError):
        StarCurve(amplitude=1.5)
    with pytest.raises(ValueError):
        StarCurve(arms=0)
    with pytest.raises(ValueError):
        Kite(scale=0.0)
    with pytest.raises(ValueError):
        Circle().discretize(4)


def test_trapezoid_nodes():
    t = trapezoid_nodes(8)
    assert t.shape == (8,)
    assert np.allclose(np.diff(t), np.pi / 4)
