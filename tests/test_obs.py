"""Observability tests: metrics registry, tracer, exposition, merge, parity."""

import json
import logging
import time

import numpy as np
import pytest

import repro
from repro.obs import (
    MetricsRegistry,
    Tracer,
    chrome_trace,
    log_event,
    parse_prometheus,
    render_prometheus,
    trace,
)
from repro.vmpi import ProcessBackend, process_backend_available, run_spmd

needs_process = pytest.mark.skipif(
    not process_backend_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)


@pytest.fixture
def global_trace():
    """Enable the process-wide tracer for one test, then restore it."""
    was = trace.enabled
    trace.clear()
    trace.enable()
    yield trace
    trace.set_enabled(was)
    trace.clear()


# ----------------------------------------------------------------------
# metrics registry
# ----------------------------------------------------------------------
def test_counter_accumulates_per_labelset():
    reg = MetricsRegistry()
    c = reg.counter("t_total", "help", labelnames=("kind",))
    c.inc(kind="a")
    c.inc(2, kind="a")
    c.inc(kind="b")
    assert c.value(kind="a") == 3
    assert c.value(kind="b") == 1
    assert c.value(kind="never") == 0


def test_counter_rejects_negative_and_bad_labels():
    reg = MetricsRegistry()
    c = reg.counter("t_total", "help", labelnames=("kind",))
    with pytest.raises(ValueError):
        c.inc(-1, kind="a")
    with pytest.raises(ValueError):
        c.inc(kind="a", extra="nope")
    with pytest.raises(ValueError):
        c.inc()  # missing the declared label


def test_gauge_set_inc_dec():
    reg = MetricsRegistry()
    g = reg.gauge("t_bytes", "help")
    g.set(10)
    g.inc(5)
    g.dec(3)
    assert g.value() == 12


def test_histogram_buckets_and_render():
    reg = MetricsRegistry()
    h = reg.histogram("t_seconds", "help", buckets=(0.1, 1.0))
    for v in (0.05, 0.5, 5.0):
        h.observe(v)
    assert h.snapshot() == {"counts": [1, 1], "sum": pytest.approx(5.55), "count": 3}
    text = reg.render()
    samples = parse_prometheus(text)
    buckets = {labels["le"]: v for labels, v in samples["t_seconds_bucket"]}
    assert buckets["0.1"] == 1
    assert buckets["1"] == 2  # cumulative
    assert buckets["+Inf"] == 3
    assert samples["t_seconds_count"][0][1] == 3
    assert samples["t_seconds_sum"][0][1] == pytest.approx(5.55)


def test_registry_get_or_create_and_conflicts():
    reg = MetricsRegistry()
    c1 = reg.counter("t_total", "help")
    assert reg.counter("t_total", "help") is c1
    with pytest.raises(ValueError):
        reg.gauge("t_total", "help")  # kind conflict
    with pytest.raises(ValueError):
        reg.counter("t_total", "help", labelnames=("x",))  # label conflict
    with pytest.raises(ValueError):
        reg.counter("0bad name", "help")  # invalid metric name


def test_render_prometheus_well_formed():
    # hostile help text and label values must still render parseable
    reg = MetricsRegistry()
    reg.counter("t_total", 'tricky "help" \\ with\nnewline').inc(2)
    reg.gauge("t_gauge", "g", labelnames=("k",)).set(1.5, k='va"l\\ue\n')
    text = reg.render()
    assert text.endswith("\n")
    samples = parse_prometheus(text)
    assert samples["t_total"] == [({}, 2.0)]
    ((labels, value),) = samples["t_gauge"]
    assert "k" in labels and value == 1.5


def test_parse_prometheus_rejects_malformed():
    with pytest.raises(ValueError):
        parse_prometheus("no_value_here\n")
    with pytest.raises(ValueError):
        parse_prometheus("m not_a_number\n")
    with pytest.raises(ValueError):
        parse_prometheus("# BOGUS m counter\n")


def test_global_registry_exposition_parses():
    # whatever has accumulated process-wide must render parseable 0.0.4
    parse_prometheus(render_prometheus())


# ----------------------------------------------------------------------
# tracer
# ----------------------------------------------------------------------
def test_span_nesting_depth_and_parent():
    tr = Tracer(enabled=True)
    with tr.span("outer"):
        with tr.span("middle"):
            with tr.span("inner", k=1):
                pass
    spans = {s.name: s for s in tr.drain()}
    assert spans["outer"].depth == 0 and spans["outer"].parent is None
    assert spans["middle"].depth == 1 and spans["middle"].parent == "outer"
    assert spans["inner"].depth == 2 and spans["inner"].parent == "middle"
    assert spans["inner"].attrs == {"k": 1}
    # children close before parents, so recording order is inner-first
    assert [s.name for s in tr.drain()] == []


def test_span_timestamps_nest():
    tr = Tracer(enabled=True)
    with tr.span("outer"):
        time.sleep(0.002)
        with tr.span("inner"):
            time.sleep(0.002)
    inner, outer = sorted(tr.drain(), key=lambda s: s.start, reverse=True)
    assert outer.name == "outer" and inner.name == "inner"
    assert outer.start <= inner.start
    assert inner.start + inner.duration <= outer.start + outer.duration + 1e-9


def test_span_set_attaches_attrs():
    tr = Tracer(enabled=True)
    with tr.span("work", fixed=1) as sp:
        sp.set(result=42)
    (span,) = tr.drain()
    assert span.attrs == {"fixed": 1, "result": 42}


def test_track_labels_spans():
    tr = Tracer(enabled=True)
    with tr.track("rank7"):
        with tr.span("inside"):
            pass
    with tr.span("outside"):
        pass
    spans = {s.name: s.track for s in tr.drain()}
    assert spans == {"inside": "rank7", "outside": None}


def test_disabled_span_is_shared_noop():
    tr = Tracer(enabled=False)
    sp = tr.span("anything", big=list(range(3)))
    assert sp is tr.span("other")  # one shared no-op object
    with sp as s:
        s.set(x=1)
    assert tr.snapshot() == []


def test_disabled_overhead_guard():
    # the disabled path is one flag read; keep it under a very generous
    # absolute budget so a regression to span-allocation is caught
    tr = Tracer(enabled=False)
    n = 50_000
    t0 = time.perf_counter()
    for _ in range(n):
        with tr.span("hot", level=3):
            pass
    elapsed = time.perf_counter() - t0
    assert elapsed < 1.0, f"{n} disabled spans took {elapsed:.3f}s"


def test_adopt_and_drain():
    tr = Tracer(enabled=True)
    other = Tracer(enabled=True)
    with other.span("remote"):
        pass
    tr.adopt(other.drain())
    assert [s.name for s in tr.snapshot()] == ["remote"]
    assert [s.name for s in tr.drain()] == ["remote"]
    assert tr.snapshot() == []


# ----------------------------------------------------------------------
# chrome export
# ----------------------------------------------------------------------
def test_chrome_trace_structure(tmp_path):
    tr = Tracer(enabled=True)
    with tr.track("rank0"):
        with tr.span("a"):
            with tr.span("b"):
                pass
    path = tmp_path / "trace.json"
    doc = tr.export_chrome(str(path))
    on_disk = json.loads(path.read_text())
    assert on_disk == doc
    events = doc["traceEvents"]
    names = [e["args"]["name"] for e in events if e["name"] == "thread_name"]
    assert "rank0" in names
    xs = [e for e in events if e["ph"] == "X"]
    assert {e["name"] for e in xs} == {"a", "b"}
    for e in xs:
        assert e["ts"] >= 0 and e["dur"] >= 0 and e["pid"] == 1


def test_traced_solve_has_three_nested_levels(global_trace):
    prob = repro.LaplaceVolumeProblem(m=8)
    repro.solve(prob, prob.random_rhs(0))
    doc = chrome_trace(global_trace.snapshot())
    xs = [e for e in doc["traceEvents"] if e["ph"] == "X"]
    depths = {e["args"]["depth"] for e in xs}
    assert {0, 1, 2}.issubset(depths)
    names = {e["name"] for e in xs}
    assert "solve" in names and "factor.level" in names and "factor.id" in names


# ----------------------------------------------------------------------
# distributed merge
# ----------------------------------------------------------------------
def _traced_rank_prog(comm):
    with trace.span("work.step", rank=comm.rank):
        pass
    return comm.rank


@needs_process
def test_process_ranks_merge_into_parent_tracer(global_trace):
    run = run_spmd(2, _traced_rank_prog, backend=ProcessBackend(pool=False))
    assert run.results == [0, 1]
    spans = global_trace.snapshot()
    tracks = {s.track for s in spans}
    assert {"rank0", "rank1"}.issubset(tracks)
    names = {s.name for s in spans if s.track == "rank0"}
    assert {"vmpi.rank", "work.step"}.issubset(names)
    # adopted, not left behind on the reports
    assert all(not r.spans for r in run.reports)


@needs_process
def test_persistent_pool_ranks_merge(global_trace):
    be = ProcessBackend(pool=True)
    try:
        run = run_spmd(2, _traced_rank_prog, backend=be)
    finally:
        from repro.vmpi.pool import shutdown_all_pools

        shutdown_all_pools()
    assert run.results == [0, 1]
    tracks = {s.track for s in global_trace.snapshot()}
    assert {"rank0", "rank1"}.issubset(tracks)


def test_thread_ranks_record_directly(global_trace):
    run = run_spmd(2, _traced_rank_prog, backend="thread")
    assert run.results == [0, 1]
    tracks = {s.track for s in global_trace.snapshot()}
    assert {"rank0", "rank1"}.issubset(tracks)


# ----------------------------------------------------------------------
# parity: tracing must not change the numbers
# ----------------------------------------------------------------------
def test_tracing_does_not_change_solve_bitwise():
    prob = repro.LaplaceVolumeProblem(m=8)
    b = prob.random_rhs(1)
    assert not trace.enabled  # REPRO_OBS defaults off
    x_off = repro.solve(prob, b).x
    trace.enable()
    try:
        x_on = repro.solve(prob, b).x
    finally:
        trace.disable()
        trace.clear()
    np.testing.assert_array_equal(x_off, x_on)


# ----------------------------------------------------------------------
# structured logs
# ----------------------------------------------------------------------
def test_log_event_emits_one_json_line(caplog):
    with caplog.at_level(logging.INFO, logger="repro.requests"):
        log_event("solve", request_id="abc", t_solve=0.25, skipped=None)
    (record,) = caplog.records
    doc = json.loads(record.getMessage())
    assert doc.pop("ts") > 0
    assert doc == {"event": "solve", "request_id": "abc", "t_solve": 0.25}


def test_service_report_carries_request_id_and_spans(caplog):
    from repro.service import SolveService

    prob = repro.LaplaceVolumeProblem(m=8)
    with SolveService(workers=2, batch_window=0.0) as service:
        with caplog.at_level(logging.INFO, logger="repro.requests"):
            report = service.submit(
                prob, prob.random_rhs(0), request_id="req-42"
            ).result()
    assert report.request_id == "req-42"
    assert [s["name"] for s in report.spans] == ["queue", "factor", "solve"]
    assert all(s["seconds"] >= 0 for s in report.spans)
    d = report.to_dict(include_relres=False)
    assert d["request_id"] == "req-42" and len(d["spans"]) == 3
    docs = [json.loads(r.getMessage()) for r in caplog.records]
    mine = [d for d in docs if d.get("request_id") == "req-42"]
    assert len(mine) == 1
    assert mine[0]["status"] == "ok" and mine[0]["event"] == "solve"


def test_service_failure_logs_error_line(caplog):
    from repro.service import SolveService

    prob = repro.LaplaceVolumeProblem(m=8)
    with SolveService(workers=1, batch_window=0.0) as service:
        with caplog.at_level(logging.INFO, logger="repro.requests"):
            fut = service.submit(
                prob, np.zeros(3), request_id="req-bad"
            )
            with pytest.raises(ValueError):
                fut.result()
    docs = [json.loads(r.getMessage()) for r in caplog.records]
    mine = [d for d in docs if d.get("request_id") == "req-bad"]
    assert mine and mine[0]["status"] == "error"
    assert "ValueError" in mine[0]["error"]


# ----------------------------------------------------------------------
# engine metrics land in the global registry
# ----------------------------------------------------------------------
def test_factor_metrics_accumulate():
    def boxes_total():
        samples = parse_prometheus(render_prometheus())
        return sum(v for _l, v in samples.get("repro_factor_boxes_total", []))

    before = boxes_total()
    prob = repro.LaplaceVolumeProblem(m=8)
    repro.solve(prob, prob.random_rhs(0))
    assert boxes_total() > before
    samples = parse_prometheus(render_prometheus())
    assert "repro_solve_total" in samples
