"""Tests for proxy-circle construction and the compression guarantee."""

import numpy as np
import pytest

from repro.core import SRSOptions, proxy_circle, proxy_point_count
from repro.core.proxy import proxy_points_for_box
from repro.geometry import uniform_grid
from repro.kernels import HelmholtzKernelMatrix, LaplaceKernelMatrix
from repro.linalg import interp_decomp


def test_circle_geometry():
    pts = proxy_circle(np.array([0.5, 0.5]), 0.3, 32)
    r = np.hypot(pts[:, 0] - 0.5, pts[:, 1] - 0.5)
    assert np.allclose(r, 0.3)
    assert pts.shape == (32, 2)


def test_circle_validation():
    with pytest.raises(ValueError):
        proxy_circle(np.zeros(2), -1.0, 8)
    with pytest.raises(ValueError):
        proxy_circle(np.zeros(2), 1.0, 0)


def test_point_count_constant_for_laplace():
    k = LaplaceKernelMatrix(uniform_grid(8), 1.0 / 8)
    opts = SRSOptions()
    assert proxy_point_count(k, 0.1, opts) == opts.n_proxy
    assert proxy_point_count(k, 100.0, opts) == opts.n_proxy


def test_point_count_scales_with_kappa():
    pts = uniform_grid(8)
    k = HelmholtzKernelMatrix(pts, 1.0 / 8, 200.0)
    opts = SRSOptions()
    big = proxy_point_count(k, 1.0, opts)
    assert big >= opts.proxy_oversampling * 200.0


def test_options_validation():
    with pytest.raises(ValueError):
        SRSOptions(proxy_radius_factor=1.0)  # inside near field
    with pytest.raises(ValueError):
        SRSOptions(tol=-1)
    with pytest.raises(ValueError):
        SRSOptions(leaf_size=0)
    with pytest.raises(ValueError):
        SRSOptions(n_proxy=2)
    with pytest.raises(ValueError):
        SRSOptions(id_method="nope")


def test_proxy_substitutes_far_field():
    """ID rank from [A_MB; proxy] matches rank from the true far field.

    This is the empirical claim of Sec. II-C (Theorem 1 relaxation):
    compressing against M(B) + proxy circle finds skeletons that also
    compress the full far field.
    """
    m = 32
    pts = uniform_grid(m)
    k = LaplaceKernelMatrix(pts, 1.0 / m)
    from repro.tree import QuadTree

    tree = QuadTree(pts, 3)
    box = (3, 3)  # interior box at leaf level
    bidx = tree.leaf_points(*box)
    nbrs = set(tree.neighbors(3, *box)) | {box}
    far = [c for c in tree.boxes(3) if c not in nbrs]
    far_idx = np.concatenate([tree.leaf_points(*c) for c in far])

    # true far-field compression
    a_fb = k.block(far_idx, bidx)
    true_dec = interp_decomp(a_fb, 1e-8)

    # proxy compression
    opts = SRSOptions(tol=1e-8)
    proxy = proxy_points_for_box(k, tree.box_center(3, *box), tree.box_side(3), opts)
    m_idx = np.concatenate([tree.leaf_points(*c) for c in tree.dist2_neighbors(3, *box)])
    stacked = np.vstack([k.block(m_idx, bidx), k.proxy_row_block(proxy, bidx)])
    proxy_dec = interp_decomp(stacked, 1e-8)

    # proxy rank must be comparable (within a couple) of the true rank
    assert abs(proxy_dec.rank - true_dec.rank) <= 3
    # and the proxy skeleton must compress the true far field well
    sub = a_fb[:, proxy_dec.skeleton]
    t_fit = np.linalg.lstsq(sub, a_fb[:, proxy_dec.redundant], rcond=None)[0]
    err = np.linalg.norm(a_fb[:, proxy_dec.redundant] - sub @ t_fit, 2)
    assert err <= 1e-6 * np.linalg.norm(a_fb, 2)
