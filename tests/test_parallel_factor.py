"""Integration tests for the distributed factorization (Sec. III)."""

import numpy as np
import pytest

from repro.core import SRSOptions, srs_factor
from repro.geometry import uniform_grid
from repro.kernels import (
    GaussianKernelMatrix,
    HelmholtzKernelMatrix,
    LaplaceKernelMatrix,
    dense_matrix,
)
from repro.kernels.helmholtz import gaussian_bump
from repro.parallel import parallel_srs_factor


def relres(a, x, b):
    return np.linalg.norm(a @ x - b) / np.linalg.norm(b)


@pytest.mark.parametrize("p", [1, 4, 16])
def test_gaussian_all_p_machine_precision(p, rng):
    m = 32
    k = GaussianKernelMatrix(uniform_grid(m), 1.0 / m, sigma=0.05, shift=1.0)
    a = dense_matrix(k)
    b = rng.standard_normal(k.n)
    fact = parallel_srs_factor(k, p, opts=SRSOptions(tol=1e-10, leaf_size=16))
    assert relres(a, fact.solve(b), b) < 1e-10


@pytest.mark.parametrize("p", [1, 4])
def test_laplace_matches_sequential_quality(p, laplace32, laplace32_dense, rng):
    opts = SRSOptions(tol=1e-9, leaf_size=32)
    seq = srs_factor(laplace32, opts=opts)
    par = parallel_srs_factor(laplace32, p, opts=opts)
    b = rng.standard_normal(laplace32.n)
    r_seq = relres(laplace32_dense, seq.solve(b), b)
    r_par = relres(laplace32_dense, par.solve(b), b)
    assert r_par < 10 * r_seq + 1e-12


def test_helmholtz_parallel(helmholtz24, helmholtz24_dense, rng):
    fact = parallel_srs_factor(helmholtz24, 4, opts=SRSOptions(tol=1e-8, leaf_size=36))
    b = rng.standard_normal(helmholtz24.n) + 1j * rng.standard_normal(helmholtz24.n)
    assert relres(helmholtz24_dense, fact.solve(b), b) < 1e-6


def test_p1_identical_to_sequential(gaussian16, rng):
    opts = SRSOptions(tol=1e-8, leaf_size=16)
    seq = srs_factor(gaussian16, opts=opts)
    par = parallel_srs_factor(gaussian16, 1, opts=opts)
    b = rng.standard_normal(gaussian16.n)
    assert np.allclose(seq.solve(b), par.solve(b), rtol=1e-13, atol=1e-15)


def test_eliminated_count(gaussian16):
    fact = parallel_srs_factor(gaussian16, 4, opts=SRSOptions(tol=1e-8, leaf_size=16))
    assert fact.eliminated_count() == gaussian16.n


def test_invalid_p_rejected(gaussian16):
    with pytest.raises(ValueError):
        parallel_srs_factor(gaussian16, 3)
    with pytest.raises(ValueError):
        parallel_srs_factor(gaussian16, 8)


def test_p_too_large_for_tree(gaussian16):
    with pytest.raises(ValueError):
        parallel_srs_factor(gaussian16, 64, opts=SRSOptions(leaf_size=16), nlevels=3)


def test_neighbor_only_communication(laplace32):
    """Every rank talks only to grid-adjacent ranks (+ rank 0 for setup
    and the reduction chain) — the paper's central claim."""
    p = 16
    fact = parallel_srs_factor(laplace32, p, opts=SRSOptions(tol=1e-6, leaf_size=16))
    # reports exist for all ranks and message counts are modest:
    # O(log N + log p) per rank, far below all-to-all (p-1 per phase)
    run = fact.factor_run
    assert run.max_messages_per_rank() < 200


def test_stats_match_sequential_totals(laplace32):
    opts = SRSOptions(tol=1e-6, leaf_size=32)
    seq = srs_factor(laplace32, opts=opts)
    par = parallel_srs_factor(laplace32, 4, opts=opts)
    for level in seq.stats.levels():
        assert len(par.stats.ranks[level]) == len(seq.stats.ranks[level])
        # total skeleton count should be close (different orders change
        # individual IDs slightly)
        s_seq = sum(seq.stats.ranks[level])
        s_par = sum(par.stats.ranks[level])
        assert abs(s_seq - s_par) <= max(5, 0.1 * s_seq)


def test_timing_fields(gaussian16):
    fact = parallel_srs_factor(gaussian16, 4, opts=SRSOptions(tol=1e-8, leaf_size=16))
    assert fact.t_fact > 0
    assert fact.t_fact_comp >= 0
    assert fact.t_fact_other >= 0
    assert fact.t_fact == pytest.approx(fact.t_fact_comp + fact.t_fact_other, rel=1e-6)


def test_deeper_tree_with_reduction_chain(rng):
    """p=16 on a 4-level tree exercises two 4-to-1 reductions."""
    m = 32
    k = GaussianKernelMatrix(uniform_grid(m), 1.0 / m, sigma=0.03, shift=1.0)
    a = dense_matrix(k)
    fact = parallel_srs_factor(k, 16, opts=SRSOptions(tol=1e-10, leaf_size=8), nlevels=4)
    b = rng.standard_normal(k.n)
    assert relres(a, fact.solve(b), b) < 1e-9


def test_memory_accounting(gaussian16):
    fact = parallel_srs_factor(gaussian16, 4, opts=SRSOptions(tol=1e-8, leaf_size=16))
    assert fact.memory_bytes() > 0
