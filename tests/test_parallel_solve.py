"""Tests for the distributed solve phase."""

import numpy as np
import pytest

from repro.core import SRSOptions
from repro.geometry import uniform_grid
from repro.kernels import GaussianKernelMatrix, LaplaceKernelMatrix, dense_matrix
from repro.parallel import parallel_srs_factor
from repro.vmpi import INTER_NODE


@pytest.fixture(scope="module")
def pfact():
    m = 32
    k = GaussianKernelMatrix(uniform_grid(m), 1.0 / m, sigma=0.05, shift=1.0)
    fact = parallel_srs_factor(k, 4, opts=SRSOptions(tol=1e-10, leaf_size=32))
    return k, dense_matrix(k), fact


def test_multiple_rhs(pfact, rng):
    k, a, fact = pfact
    bs = rng.standard_normal((k.n, 3))
    xs = fact.solve(bs)
    assert xs.shape == bs.shape
    for j in range(3):
        assert np.linalg.norm(a @ xs[:, j] - bs[:, j]) / np.linalg.norm(bs[:, j]) < 1e-10


def test_multi_rhs_matches_single(pfact, rng):
    k, a, fact = pfact
    bs = rng.standard_normal((k.n, 2))
    xs = fact.solve(bs)
    for j in range(2):
        assert np.allclose(xs[:, j], fact.solve(bs[:, j]), rtol=1e-12, atol=1e-14)


def test_solve_records_timing(pfact, rng):
    k, a, fact = pfact
    fact.solve(rng.standard_normal(k.n))
    assert fact.t_solve > 0
    assert fact.last_solve_run is not None


def test_solve_repeatable(pfact, rng):
    k, a, fact = pfact
    b = rng.standard_normal(k.n)
    assert np.array_equal(fact.solve(b), fact.solve(b))


def test_solve_wrong_size(pfact):
    _, _, fact = pfact
    with pytest.raises(ValueError):
        fact.solve(np.zeros(5))


def test_solve_cheaper_than_factor(pfact, rng):
    """t_solve << t_fact — the direct-solver selling point (Sec. I-A)."""
    k, _, fact = pfact
    fact.solve(rng.standard_normal(k.n))
    assert fact.t_solve < fact.t_fact


def test_inter_node_cost_model_slower(rng):
    """Same run under the 1-process-per-node cost model has larger
    t_other (Table VII's contrast)."""
    m = 32
    k = LaplaceKernelMatrix(uniform_grid(m), 1.0 / m)
    opts = SRSOptions(tol=1e-6, leaf_size=32)
    fast = parallel_srs_factor(k, 4, opts=opts)
    slow = parallel_srs_factor(k, 4, opts=opts, cost_model=INTER_NODE)
    b = rng.standard_normal(k.n)
    x1, x2 = fast.solve(b), slow.solve(b)
    assert np.allclose(x1, x2)  # identical numerics
    # comm bytes identical, simulated comm cost higher or equal
    assert slow.factor_run.total_bytes == fast.factor_run.total_bytes
