"""Tests for the interaction store (active sets + modified blocks)."""

import numpy as np
import pytest

from repro.core.interactions import InteractionStore
from repro.geometry import uniform_grid
from repro.kernels import GaussianKernelMatrix
from repro.tree import QuadTree


@pytest.fixture
def setup():
    pts = uniform_grid(8)
    kernel = GaussianKernelMatrix(pts, 1.0 / 8, sigma=0.1)
    tree = QuadTree(pts, 2)
    active = {c: tree.leaf_points(*c) for c in tree.nonempty_leaves()}
    return kernel, tree, active


def test_get_falls_back_to_kernel(setup):
    kernel, tree, active = setup
    store = InteractionStore(kernel, active)
    b0, b1 = (0, 0), (1, 1)
    blk = store.get(b0, b1)
    assert np.allclose(blk, kernel.block(active[b0], active[b1]))
    assert not store.is_modified(b0, b1)


def test_get_writable_materializes_and_persists(setup):
    kernel, tree, active = setup
    store = InteractionStore(kernel, active)
    b0, b1 = (0, 0), (0, 1)
    blk = store.get_writable(b0, b1)
    blk -= 1.0
    assert store.is_modified(b0, b1)
    assert np.allclose(store.get(b0, b1), kernel.block(active[b0], active[b1]) - 1.0)


def test_locality_guard(setup):
    kernel, tree, active = setup
    store = InteractionStore(kernel, active, max_modified_distance=2)
    with pytest.raises(RuntimeError, match="locality"):
        store.get_writable((0, 0), (3, 3))
    # distance-2 is allowed
    store.get_writable((0, 0), (2, 2))


def test_restrict_shrinks_all_touching_blocks(setup):
    kernel, tree, active = setup
    store = InteractionStore(kernel, active)
    b0, b1 = (0, 0), (0, 1)
    store.get_writable(b0, b1)
    store.get_writable(b1, b0)
    store.get_writable(b0, b0)
    n0 = store.nactive(b0)
    keep = np.array([0, 2])
    store.restrict(b0, keep)
    assert store.nactive(b0) == 2
    assert store.get(b0, b1).shape[0] == 2
    assert store.get(b1, b0).shape[1] == 2
    assert store.get(b0, b0).shape == (2, 2)
    assert n0 > 2


def test_restrict_keeps_values(setup):
    kernel, tree, active = setup
    store = InteractionStore(kernel, active)
    b0, b1 = (0, 0), (0, 1)
    before = store.get_writable(b0, b1).copy()
    keep = np.array([1, 3])
    store.restrict(b0, keep)
    assert np.allclose(store.get(b0, b1), before[keep, :])


def test_set_shape_validation(setup):
    kernel, tree, active = setup
    store = InteractionStore(kernel, active)
    with pytest.raises(ValueError):
        store.set((0, 0), (0, 1), np.zeros((1, 1)))


def test_seed_blocks_registered(setup):
    kernel, tree, active = setup
    val = np.ones((active[(0, 0)].size, active[(1, 0)].size))
    store = InteractionStore(kernel, active, blocks={((0, 0), (1, 0)): val})
    assert store.is_modified((0, 0), (1, 0))
    assert np.allclose(store.get((0, 0), (1, 0)), 1.0)


def test_store_predicate_discards_updates(setup):
    kernel, tree, active = setup
    store = InteractionStore(
        kernel, active, store_predicate=lambda bi, bj: bi == (0, 0) or bj == (0, 0)
    )
    blk = store.get_writable((1, 1), (1, 0))  # not held
    blk -= 5.0
    assert not store.is_modified((1, 1), (1, 0))
    held = store.get_writable((0, 0), (1, 0))
    held -= 5.0
    assert store.is_modified((0, 0), (1, 0))


def test_drop_box(setup):
    kernel, tree, active = setup
    store = InteractionStore(kernel, active)
    store.get_writable((0, 0), (0, 1))
    store.drop_box((0, 0))
    assert (0, 0) not in store.active
    assert not store.is_modified((0, 0), (0, 1))


def test_memory_accounting(setup):
    kernel, tree, active = setup
    store = InteractionStore(kernel, active)
    assert store.memory_bytes() == 0
    store.get_writable((0, 0), (0, 1))
    assert store.memory_bytes() > 0
