"""Thread/process execution-backend parity and shared-memory codec tests.

The two backends must be observationally identical: bitwise-equal
results and equal message/byte counters — only the physics of delivery
(threads + deep copies vs processes + shared-memory blocks) differs.
"""

import pickle

import numpy as np
import pytest

from repro.apps import LaplaceVolumeProblem
from repro.core import SRSOptions
from repro.parallel import parallel_srs_factor
from repro.vmpi import (
    ProcessBackend,
    ThreadBackend,
    process_backend_available,
    resolve_backend,
    run_spmd,
)
from repro.vmpi.process_backend import decode_payload, encode_payload

needs_process = pytest.mark.skipif(
    not process_backend_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)


# ----------------------------------------------------------------------
# backend resolution / config
# ----------------------------------------------------------------------
def test_resolve_backend_default_is_thread(monkeypatch):
    monkeypatch.delenv("REPRO_VMPI_BACKEND", raising=False)
    assert resolve_backend(None).name == "thread"
    assert resolve_backend("thread").name == "thread"


def test_resolve_backend_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_VMPI_BACKEND", "process")
    if process_backend_available():
        assert resolve_backend(None).name == "process"
    monkeypatch.setenv("REPRO_VMPI_BACKEND", "bogus")
    with pytest.raises(ValueError):
        resolve_backend(None)


def test_resolve_backend_passthrough_instance():
    be = ThreadBackend()
    assert resolve_backend(be) is be


def test_resolve_backend_normalizes_strings(monkeypatch):
    assert resolve_backend(" Thread ").name == "thread"
    if process_backend_available():
        assert resolve_backend("Process").name == "process"
    # blank spec falls back to the configured default, like an unset var
    monkeypatch.delenv("REPRO_VMPI_BACKEND", raising=False)
    assert resolve_backend("").name == "thread"
    assert resolve_backend("  ").name == "thread"


# ----------------------------------------------------------------------
# shared-memory codec
# ----------------------------------------------------------------------
@needs_process
def test_shm_codec_roundtrip_nested():
    payload = {
        "big": np.arange(4096, dtype=np.float64),
        "complex": (np.zeros((64, 64), dtype=np.complex128) + 1j),
        "small": np.arange(4, dtype=np.int32),
        "scalars": [1, 2.5, "tag", None, (3, 4)],
    }
    encoded = encode_payload(payload, min_bytes=2048)
    # the large arrays were carved out, the small one rides the pickle channel
    assert not isinstance(encoded["big"], np.ndarray)
    assert not isinstance(encoded["complex"], np.ndarray)
    assert isinstance(encoded["small"], np.ndarray)
    decoded = decode_payload(pickle.loads(pickle.dumps(encoded)))
    np.testing.assert_array_equal(decoded["big"], payload["big"])
    assert decoded["big"].dtype == payload["big"].dtype
    np.testing.assert_array_equal(decoded["complex"], payload["complex"])
    np.testing.assert_array_equal(decoded["small"], payload["small"])
    assert decoded["scalars"] == payload["scalars"]


@needs_process
def test_shm_codec_structured_dtype_rides_pickle_channel():
    """Structured dtypes lose their field layout through dtype.str, so
    they must stay on the pickle channel regardless of size."""
    rec = np.zeros(1000, dtype=[("a", "f8"), ("b", "i8")])
    rec["a"] = 1.5
    encoded = encode_payload({"rec": rec}, min_bytes=0)
    assert isinstance(encoded["rec"], np.ndarray)
    decoded = decode_payload(pickle.loads(pickle.dumps(encoded)))
    assert decoded["rec"].dtype.names == ("a", "b")
    np.testing.assert_array_equal(decoded["rec"]["a"], rec["a"])


def _structured_send_prog(comm):
    rec = np.zeros(500, dtype=[("a", "f8"), ("b", "i8")])
    rec["b"] = np.arange(500)
    if comm.rank == 0:
        comm.send(rec, 1)
        return None
    got = comm.recv(0)
    return int(got["b"].sum())


@needs_process
def test_process_backend_structured_dtype_parity():
    expected = int(np.arange(500).sum())
    for backend in ("thread", "process"):
        assert run_spmd(2, _structured_send_prog, backend=backend).results[1] == expected


@needs_process
def test_shm_codec_empty_arrays_at_zero_threshold():
    """0-byte arrays must stay on the pickle channel even when the
    threshold is 0 (SharedMemory rejects size-0 blocks)."""
    payload = {"empty": np.empty(0, dtype=np.int64), "data": np.arange(8.0)}
    encoded = encode_payload(payload, min_bytes=0)
    assert isinstance(encoded["empty"], np.ndarray)
    assert not isinstance(encoded["data"], np.ndarray)
    decoded = decode_payload(encoded)
    assert decoded["empty"].size == 0
    np.testing.assert_array_equal(decoded["data"], payload["data"])


def _empty_send_prog(comm):
    if comm.rank == 0:
        comm.send(np.empty(0, dtype=np.int64), 1)
        return None
    return comm.recv(0).size


@needs_process
def test_process_backend_zero_threshold_run():
    from repro.vmpi import ProcessBackend

    run = run_spmd(2, _empty_send_prog, backend=ProcessBackend(min_shm_bytes=0))
    assert run.results[1] == 0


@needs_process
def test_shm_codec_noncontiguous_and_isolation():
    base = np.arange(10000, dtype=np.float64).reshape(100, 100)
    view = base[::2, ::2]  # non-contiguous
    decoded = decode_payload(encode_payload(view, min_bytes=0))
    np.testing.assert_array_equal(decoded, view)
    decoded[0, 0] = -1.0  # writable, and isolated from the source
    assert base[0, 0] == 0.0


@needs_process
def test_shm_codec_zero_dim_rides_pickle_channel():
    """0-d arrays stay on the pickle channel deterministically (they are
    control-message sized; SharedMemory blocks are for real buffers)."""
    scalar = np.array(3.5)
    encoded = encode_payload({"s": scalar}, min_bytes=0)
    assert encoded["s"] is scalar
    assert decode_payload(encoded)["s"] == 3.5


@needs_process
def test_shm_codec_preserves_fortran_order():
    """F-contiguous arrays (LAPACK LU factors) must come back
    F-contiguous: layout normalization would route later BLAS calls
    down different kernels and break bitwise cross-backend parity."""
    f_arr = np.asfortranarray(np.arange(10000, dtype=np.float64).reshape(100, 100))
    c_arr = np.ascontiguousarray(f_arr)
    dec_f, dec_c = decode_payload(encode_payload((f_arr, c_arr), min_bytes=0))
    assert dec_f.flags.f_contiguous and not dec_f.flags.c_contiguous
    assert dec_c.flags.c_contiguous
    np.testing.assert_array_equal(dec_f, f_arr)


# ----------------------------------------------------------------------
# dataclass payloads (WorkerResult / BoxRecord / PartialLU trees)
# ----------------------------------------------------------------------
def _make_box_record():
    from repro.core.skel import BoxRecord
    from repro.linalg.lu import PartialLU

    rng = np.random.default_rng(7)
    return BoxRecord(
        box=(1, 2),
        level=3,
        redundant=np.arange(24, dtype=np.int64),
        skeleton=np.arange(24, 48, dtype=np.int64),
        cluster=np.arange(48, 120, dtype=np.int64),
        T=rng.standard_normal((24, 24)),
        lu=PartialLU(rng.standard_normal((24, 24)) + 24 * np.eye(24)),
        x_cr=rng.standard_normal((72, 24)),
        x_rc=rng.standard_normal((24, 72)),
        cluster_segments=[((1, 2), 0, 24), ((1, 3), 24, 72)],
    )


@needs_process
def test_shm_codec_walks_dataclass_payloads():
    """BoxRecord (a dataclass holding a PartialLU) travels with its big
    arrays carved into shm blocks; the original is never mutated."""
    rec = _make_box_record()
    t_before, lu_before = rec.T, rec.lu._lu
    created = []
    enc = encode_payload(rec, min_bytes=256, created=created)
    assert enc is not rec and created  # rebuilt along changed paths only
    assert rec.T is t_before and rec.lu._lu is lu_before  # source intact
    assert not isinstance(enc.T, np.ndarray)
    assert not isinstance(enc.lu._lu, np.ndarray)  # __shm_walk__ opt-in
    dec = decode_payload(pickle.loads(pickle.dumps(enc)))
    np.testing.assert_array_equal(dec.T, rec.T)
    np.testing.assert_array_equal(dec.x_cr, rec.x_cr)
    np.testing.assert_array_equal(dec.lu._lu, rec.lu._lu)
    assert dec.lu._lu.flags.f_contiguous == rec.lu._lu.flags.f_contiguous
    assert dec.cluster_segments == rec.cluster_segments
    # the reassembled PartialLU still solves
    rhs = np.ones(24)
    np.testing.assert_array_equal(dec.lu.solve_left(rhs), rec.lu.solve_left(rhs))


@needs_process
def test_shm_codec_dataclass_edge_fields_ride_pickle_channel():
    """Edge cases inside walked dataclasses — empty, 0-d, object-dtype,
    and structured fields — deterministically stay on the pickle
    channel instead of raising."""
    from dataclasses import dataclass, field

    @dataclass
    class Payload:
        empty: np.ndarray = field(default_factory=lambda: np.empty(0))
        zero_d: np.ndarray = field(default_factory=lambda: np.array(1.5))
        objs: np.ndarray = field(
            default_factory=lambda: np.array([{"a": 1}, None], dtype=object)
        )
        rec: np.ndarray = field(
            default_factory=lambda: np.zeros(500, dtype=[("a", "f8"), ("b", "i8")])
        )
        big: np.ndarray = field(default_factory=lambda: np.arange(4096.0))

    p = Payload()
    enc = encode_payload(p, min_bytes=0)
    assert enc.empty is p.empty and enc.zero_d is p.zero_d
    assert enc.objs is p.objs and enc.rec is p.rec
    assert not isinstance(enc.big, np.ndarray)  # only the real buffer carved
    dec = decode_payload(enc)
    np.testing.assert_array_equal(dec.big, p.big)


@needs_process
def test_shm_codec_identity_on_arrayless_payloads():
    """Payloads without carvable arrays pass through by identity — no
    container/dataclass rebuilds on the fast path."""
    rec = _make_box_record()
    payload = {"tag": 7, "coords": [(1, 2), (3, 4)], "rec": rec}
    assert encode_payload(payload, min_bytes=10**9) is payload
    assert decode_payload(payload) is payload


def test_worker_result_shm_codec_shrinks_pickle_channel(factor_pair):
    """Acceptance probe: encoding a WorkerResult through the codec drops
    the pickle-channel byte count to control-message size — the array
    payload (records, LU factors) travels out-of-band."""
    from repro.vmpi.process_backend import _release_refs

    workers = factor_pair["thread"][0].workers
    raw = len(pickle.dumps(workers, protocol=pickle.HIGHEST_PROTOCOL))
    created = []
    enc = encode_payload(workers, min_bytes=2048, created=created)
    try:
        carved = len(pickle.dumps(enc, protocol=pickle.HIGHEST_PROTOCOL))
        assert created, "no arrays were carved out of the factorization"
        assert carved < raw / 2, (carved, raw)
    finally:
        _release_refs(enc)  # unlink the blocks this probe carved


# ----------------------------------------------------------------------
# SPMD parity
# ----------------------------------------------------------------------
def _collective_prog(comm):
    rank = comm.rank
    data = np.arange(3000, dtype=np.float64) * (rank + 1)
    total = comm.allreduce(float(data.sum()), lambda a, b: a + b)
    gathered = comm.gather(np.full(rank + 1, rank, dtype=np.int64), 0)
    chunk = comm.scatter(
        [np.arange(i + 1, dtype=np.float64) for i in range(comm.size)] if rank == 0 else None,
        0,
    )
    peer = rank ^ 1
    comm.send(data, peer, tag=5)
    mirror = comm.recv(peer, tag=5)
    return (
        total,
        None if gathered is None else [g.tolist() for g in gathered],
        chunk.tolist(),
        float(mirror.sum()),
    )


@needs_process
def test_collectives_parity_and_counters():
    runs = {
        be.name: run_spmd(4, _collective_prog, backend=be)
        for be in (ThreadBackend(), ProcessBackend())
    }
    t, p = runs["thread"], runs["process"]
    assert t.results == p.results
    for rt, rp in zip(t.reports, p.reports):
        assert rt.messages_sent == rp.messages_sent
        assert rt.bytes_sent == rp.bytes_sent
        assert rt.messages_received == rp.messages_received
        assert rt.bytes_received == rp.bytes_received


def _mutate_prog(comm):
    data = np.arange(5000, dtype=np.float64)
    if comm.rank == 0:
        comm.send(data, 1, tag=1)
        comm.barrier()
        return float(data.sum())  # sender must be unaffected
    if comm.rank == 1:
        got = comm.recv(0, tag=1)
        got[:] = -1.0
        comm.barrier()
        return float(got.sum())
    comm.barrier()
    return None


@needs_process
def test_process_rank_isolation_with_shm_arrays():
    """Mutating a received shm-backed array must not leak to the sender."""
    run = run_spmd(2, _mutate_prog, backend="process")
    assert run.results[0] == float(np.arange(5000, dtype=np.float64).sum())
    assert run.results[1] == -5000.0


def _mutate_after_send_prog(comm):
    # one array below the shm threshold (pickle channel), one above
    small = np.arange(100, dtype=np.float64)
    big = np.arange(5000, dtype=np.float64)
    if comm.rank == 0:
        comm.send(small, 1, tag=1)
        comm.send(big, 1, tag=2)
        small[:] = -1.0  # after-send mutation must NOT reach the receiver
        big[:] = -1.0
        comm.barrier()
        return None
    got_small = comm.recv(0, tag=1)
    got_big = comm.recv(0, tag=2)
    comm.barrier()
    return float(got_small.sum()), float(got_big.sum())


@needs_process
def test_send_snapshots_payload_at_put_time():
    """Buffered-send semantics: the receiver sees the payload as it was
    at ``send`` time on both transport channels (shm copies happen
    synchronously; the pickle channel must not serialize lazily in the
    queue feeder thread)."""
    for backend in ("thread", "process"):
        run = run_spmd(2, _mutate_after_send_prog, backend=backend)
        assert run.results[1] == (
            float(np.arange(100).sum()),
            float(np.arange(5000).sum()),
        ), backend


def _boom_prog(comm):
    if comm.rank == 2:
        raise ValueError("boom")
    return comm.rank


@needs_process
def test_process_backend_error_propagates():
    with pytest.raises(RuntimeError, match="rank 2"):
        run_spmd(4, _boom_prog, backend="process")


def _unpicklable_payload_prog(comm):
    if comm.rank == 0:
        try:
            comm.send({"big": np.zeros(5000), "cb": lambda: 1}, 1)
        except Exception:
            pass  # expected: the payload cannot be pickled
        comm.send("done", 1, tag=9)
        return None
    return comm.recv(0, tag=9)


@needs_process
def test_put_releases_shm_blocks_on_pickle_failure():
    """If pickling fails after large arrays were carved into shm blocks,
    the blocks must be unlinked, not orphaned in /dev/shm."""
    import glob

    before = set(glob.glob("/dev/shm/psm_*"))
    run = run_spmd(2, _unpicklable_payload_prog, backend="process")
    assert run.results[1] == "done"
    leaked = set(glob.glob("/dev/shm/psm_*")) - before
    assert not leaked, leaked
    # the failed send must not have been counted
    assert run.reports[0].messages_sent == 1


def _orphan_send_prog(comm):
    if comm.rank == 0:
        # large enough to ride a shm block; rank 1 never receives it
        comm.send(np.arange(20000, dtype=float), 1, tag=3)
        raise ValueError("abort after send")
    return None  # rank 1 exits without receiving


@needs_process
def test_abnormal_teardown_unlinks_registered_blocks():
    """Blocks of messages stranded by a failing run must not persist.

    The sender-side name registry lets the parent unlink whatever the
    normal receiver/drain paths could not reach."""
    import glob

    before = set(glob.glob("/dev/shm/psm_*"))
    with pytest.raises(RuntimeError, match="rank 0"):
        run_spmd(2, _orphan_send_prog, backend="process")
    leaked = set(glob.glob("/dev/shm/psm_*")) - before
    assert not leaked, leaked


@needs_process
def test_unlink_registered_sweeps_orphans():
    """The registry sweep unlinks live blocks and skips consumed names."""
    import multiprocessing

    from repro.vmpi.process_backend import (
        _attach_shm,
        _create_shm,
        _drain_registry,
        _unlink_registered,
    )

    shm = _create_shm(4096)
    name = shm.name
    shm.close()
    q = multiprocessing.get_context().SimpleQueue()
    q.put(name)
    q.put("psm_repro_already_consumed")  # unlinked long ago: skipped
    names: set = set()
    _drain_registry(q, names)
    assert name in names and len(names) == 2
    _unlink_registered(names)
    q.close()
    with pytest.raises(FileNotFoundError):
        _attach_shm(name)


def _unpicklable_prog(comm):
    return lambda: 1  # unpicklable: dies shipping the result, not in fn


@needs_process
def test_process_backend_unpicklable_result_fails_fast():
    """Per-call: a result the queue cannot pickle dies in the child's
    feeder thread; the parent must detect the silent exit, not hang."""
    with pytest.raises(RuntimeError, match="without reporting a result"):
        run_spmd(
            2, _unpicklable_prog, backend=ProcessBackend(pool=False), timeout=30.0
        )


@needs_process
def test_pool_unpicklable_result_reported_as_rank_failure():
    """Pool workers pre-pickle outcomes, so an unpicklable result is a
    clean rank failure (with the pickling error named) — the worker
    survives to take the next dispatch."""
    be = ProcessBackend(pool=True)
    with pytest.raises(RuntimeError, match="rank [01] failed"):
        run_spmd(2, _unpicklable_prog, backend=be, timeout=30.0)
    # the pool is still usable afterwards
    assert run_spmd(2, _empty_send_prog, backend=be).results[1] == 0


# ----------------------------------------------------------------------
# spawn start method: everything must survive pickling
# ----------------------------------------------------------------------
def _spawn_available() -> bool:
    import multiprocessing

    return "spawn" in multiprocessing.get_all_start_methods()


needs_spawn = pytest.mark.skipif(
    not _spawn_available(), reason="spawn start method unavailable"
)


@needs_process
@needs_spawn
def test_process_backend_spawn_parity():
    """Under spawn nothing is inherited: the rank entry point, program,
    args, and queues all cross by pickling. Results and counters must
    match the thread backend exactly."""
    t = run_spmd(2, _mutate_after_send_prog, backend="thread")
    p = run_spmd(
        2, _mutate_after_send_prog, backend=ProcessBackend(start_method="spawn", pool=False)
    )
    assert t.results == p.results
    for rt, rp in zip(t.reports, p.reports):
        assert (rt.messages_sent, rt.bytes_sent) == (rp.messages_sent, rp.bytes_sent)


@needs_process
@needs_spawn
def test_start_method_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_VMPI_START_METHOD", "spawn")
    assert ProcessBackend().start_method == "spawn"
    monkeypatch.setenv("REPRO_VMPI_START_METHOD", "carrier-pigeon")
    with pytest.raises(ValueError):
        ProcessBackend()
    # a config error must surface as such — not be cached as "platform
    # has no shared memory" by the availability probe
    with pytest.raises(ValueError):
        process_backend_available()
    # an explicit constructor argument wins over the environment
    monkeypatch.setenv("REPRO_VMPI_START_METHOD", "spawn")
    assert ProcessBackend(start_method="fork").start_method == "fork"
    assert process_backend_available()


# ----------------------------------------------------------------------
# auto backend: affinity-aware core budget
# ----------------------------------------------------------------------
def test_effective_cpu_count_honors_affinity(monkeypatch):
    import os

    from repro.vmpi.backend import effective_cpu_count

    if hasattr(os, "sched_getaffinity"):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0}, raising=True)
        monkeypatch.setattr(os, "cpu_count", lambda: 64)
        assert effective_cpu_count() == 1
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1}, raising=True)
        assert effective_cpu_count() == 2
    # platforms without affinity fall back to cpu_count
    monkeypatch.delattr(os, "sched_getaffinity", raising=False)
    monkeypatch.setattr(os, "cpu_count", lambda: 3)
    assert effective_cpu_count() == 3


def test_auto_backend_single_core_cpuset_picks_thread(monkeypatch):
    """A container restricted to one core must not pick the process
    backend, no matter how many cores the host machine reports."""
    import os

    from repro.vmpi.backend import auto_backend_name

    monkeypatch.setattr(os, "cpu_count", lambda: 64)
    if hasattr(os, "sched_getaffinity"):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {5}, raising=True)
        assert auto_backend_name() == "thread"
    else:  # pragma: no cover - non-Linux
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        assert auto_backend_name() == "thread"


def test_auto_backend_multi_core_picks_process(monkeypatch):
    import os

    from repro.vmpi.backend import auto_backend_name

    if not process_backend_available():
        pytest.skip("process backend unavailable")
    if hasattr(os, "sched_getaffinity"):
        monkeypatch.setattr(os, "sched_getaffinity", lambda pid: {0, 1}, raising=True)
    else:  # pragma: no cover - non-Linux
        monkeypatch.setattr(os, "cpu_count", lambda: 2)
    assert auto_backend_name() == "process"


# ----------------------------------------------------------------------
# distributed factorization parity (small Table II configuration)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def factor_pair():
    if not process_backend_available():
        pytest.skip("process backend unavailable")
    prob = LaplaceVolumeProblem(32)
    b = prob.random_rhs()
    opts = SRSOptions(tol=1e-9, leaf_size=32)
    out = {}
    for be in ("thread", "process"):
        fact = parallel_srs_factor(prob.kernel, 4, opts=opts, backend=be)
        out[be] = (fact, fact.solve(b))
    return out


def test_factorization_bitwise_parity(factor_pair):
    x_thread = factor_pair["thread"][1]
    x_process = factor_pair["process"][1]
    assert np.array_equal(x_thread, x_process)  # bitwise, not allclose


def test_factorization_counter_parity(factor_pair):
    rt = factor_pair["thread"][0].factor_run.reports
    rp = factor_pair["process"][0].factor_run.reports
    for a, c in zip(rt, rp):
        assert (a.messages_sent, a.bytes_sent) == (c.messages_sent, c.bytes_sent)
        assert (a.messages_received, a.bytes_received) == (
            c.messages_received,
            c.bytes_received,
        )
    st = factor_pair["thread"][0].last_solve_run
    sp = factor_pair["process"][0].last_solve_run
    assert st.total_messages == sp.total_messages
    assert st.total_bytes == sp.total_bytes


def test_factorization_skeleton_parity(factor_pair):
    ft = factor_pair["thread"][0]
    fp = factor_pair["process"][0]
    assert ft.eliminated_count() == fp.eliminated_count()
    for wt, wp in zip(ft.workers, fp.workers):
        assert wt.rank == wp.rank
        assert len(wt.records) == len(wp.records)
        for a, c in zip(wt.records, wp.records):
            assert a.box == c.box and a.level == c.level
            assert np.array_equal(a.skeleton, c.skeleton)
            assert np.array_equal(a.redundant, c.redundant)


def test_worker_result_picklable(factor_pair):
    """Process ranks ship WorkerResult through the result queue."""
    workers = factor_pair["thread"][0].workers
    clone = pickle.loads(pickle.dumps(workers))
    assert [w.rank for w in clone] == [w.rank for w in workers]
    assert all(
        np.array_equal(a.leaf_ids, b.leaf_ids) for a, b in zip(clone, workers)
    )
