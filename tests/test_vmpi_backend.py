"""Thread/process execution-backend parity and shared-memory codec tests.

The two backends must be observationally identical: bitwise-equal
results and equal message/byte counters — only the physics of delivery
(threads + deep copies vs processes + shared-memory blocks) differs.
"""

import pickle

import numpy as np
import pytest

from repro.apps import LaplaceVolumeProblem
from repro.core import SRSOptions
from repro.parallel import parallel_srs_factor
from repro.vmpi import (
    ProcessBackend,
    ThreadBackend,
    process_backend_available,
    resolve_backend,
    run_spmd,
)
from repro.vmpi.process_backend import decode_payload, encode_payload

needs_process = pytest.mark.skipif(
    not process_backend_available(),
    reason="multiprocessing.shared_memory unavailable on this platform",
)


# ----------------------------------------------------------------------
# backend resolution / config
# ----------------------------------------------------------------------
def test_resolve_backend_default_is_thread(monkeypatch):
    monkeypatch.delenv("REPRO_VMPI_BACKEND", raising=False)
    assert resolve_backend(None).name == "thread"
    assert resolve_backend("thread").name == "thread"


def test_resolve_backend_env_override(monkeypatch):
    monkeypatch.setenv("REPRO_VMPI_BACKEND", "process")
    if process_backend_available():
        assert resolve_backend(None).name == "process"
    monkeypatch.setenv("REPRO_VMPI_BACKEND", "bogus")
    with pytest.raises(ValueError):
        resolve_backend(None)


def test_resolve_backend_passthrough_instance():
    be = ThreadBackend()
    assert resolve_backend(be) is be


def test_resolve_backend_normalizes_strings(monkeypatch):
    assert resolve_backend(" Thread ").name == "thread"
    if process_backend_available():
        assert resolve_backend("Process").name == "process"
    # blank spec falls back to the configured default, like an unset var
    monkeypatch.delenv("REPRO_VMPI_BACKEND", raising=False)
    assert resolve_backend("").name == "thread"
    assert resolve_backend("  ").name == "thread"


# ----------------------------------------------------------------------
# shared-memory codec
# ----------------------------------------------------------------------
@needs_process
def test_shm_codec_roundtrip_nested():
    payload = {
        "big": np.arange(4096, dtype=np.float64),
        "complex": (np.zeros((64, 64), dtype=np.complex128) + 1j),
        "small": np.arange(4, dtype=np.int32),
        "scalars": [1, 2.5, "tag", None, (3, 4)],
    }
    encoded = encode_payload(payload, min_bytes=2048)
    # the large arrays were carved out, the small one rides the pickle channel
    assert not isinstance(encoded["big"], np.ndarray)
    assert not isinstance(encoded["complex"], np.ndarray)
    assert isinstance(encoded["small"], np.ndarray)
    decoded = decode_payload(pickle.loads(pickle.dumps(encoded)))
    np.testing.assert_array_equal(decoded["big"], payload["big"])
    assert decoded["big"].dtype == payload["big"].dtype
    np.testing.assert_array_equal(decoded["complex"], payload["complex"])
    np.testing.assert_array_equal(decoded["small"], payload["small"])
    assert decoded["scalars"] == payload["scalars"]


@needs_process
def test_shm_codec_structured_dtype_rides_pickle_channel():
    """Structured dtypes lose their field layout through dtype.str, so
    they must stay on the pickle channel regardless of size."""
    rec = np.zeros(1000, dtype=[("a", "f8"), ("b", "i8")])
    rec["a"] = 1.5
    encoded = encode_payload({"rec": rec}, min_bytes=0)
    assert isinstance(encoded["rec"], np.ndarray)
    decoded = decode_payload(pickle.loads(pickle.dumps(encoded)))
    assert decoded["rec"].dtype.names == ("a", "b")
    np.testing.assert_array_equal(decoded["rec"]["a"], rec["a"])


def _structured_send_prog(comm):
    rec = np.zeros(500, dtype=[("a", "f8"), ("b", "i8")])
    rec["b"] = np.arange(500)
    if comm.rank == 0:
        comm.send(rec, 1)
        return None
    got = comm.recv(0)
    return int(got["b"].sum())


@needs_process
def test_process_backend_structured_dtype_parity():
    expected = int(np.arange(500).sum())
    for backend in ("thread", "process"):
        assert run_spmd(2, _structured_send_prog, backend=backend).results[1] == expected


@needs_process
def test_shm_codec_empty_arrays_at_zero_threshold():
    """0-byte arrays must stay on the pickle channel even when the
    threshold is 0 (SharedMemory rejects size-0 blocks)."""
    payload = {"empty": np.empty(0, dtype=np.int64), "data": np.arange(8.0)}
    encoded = encode_payload(payload, min_bytes=0)
    assert isinstance(encoded["empty"], np.ndarray)
    assert not isinstance(encoded["data"], np.ndarray)
    decoded = decode_payload(encoded)
    assert decoded["empty"].size == 0
    np.testing.assert_array_equal(decoded["data"], payload["data"])


def _empty_send_prog(comm):
    if comm.rank == 0:
        comm.send(np.empty(0, dtype=np.int64), 1)
        return None
    return comm.recv(0).size


@needs_process
def test_process_backend_zero_threshold_run():
    from repro.vmpi import ProcessBackend

    run = run_spmd(2, _empty_send_prog, backend=ProcessBackend(min_shm_bytes=0))
    assert run.results[1] == 0


@needs_process
def test_shm_codec_noncontiguous_and_isolation():
    base = np.arange(10000, dtype=np.float64).reshape(100, 100)
    view = base[::2, ::2]  # non-contiguous
    decoded = decode_payload(encode_payload(view, min_bytes=0))
    np.testing.assert_array_equal(decoded, view)
    decoded[0, 0] = -1.0  # writable, and isolated from the source
    assert base[0, 0] == 0.0


# ----------------------------------------------------------------------
# SPMD parity
# ----------------------------------------------------------------------
def _collective_prog(comm):
    rank = comm.rank
    data = np.arange(3000, dtype=np.float64) * (rank + 1)
    total = comm.allreduce(float(data.sum()), lambda a, b: a + b)
    gathered = comm.gather(np.full(rank + 1, rank, dtype=np.int64), 0)
    chunk = comm.scatter(
        [np.arange(i + 1, dtype=np.float64) for i in range(comm.size)] if rank == 0 else None,
        0,
    )
    peer = rank ^ 1
    comm.send(data, peer, tag=5)
    mirror = comm.recv(peer, tag=5)
    return (
        total,
        None if gathered is None else [g.tolist() for g in gathered],
        chunk.tolist(),
        float(mirror.sum()),
    )


@needs_process
def test_collectives_parity_and_counters():
    runs = {
        be.name: run_spmd(4, _collective_prog, backend=be)
        for be in (ThreadBackend(), ProcessBackend())
    }
    t, p = runs["thread"], runs["process"]
    assert t.results == p.results
    for rt, rp in zip(t.reports, p.reports):
        assert rt.messages_sent == rp.messages_sent
        assert rt.bytes_sent == rp.bytes_sent
        assert rt.messages_received == rp.messages_received
        assert rt.bytes_received == rp.bytes_received


def _mutate_prog(comm):
    data = np.arange(5000, dtype=np.float64)
    if comm.rank == 0:
        comm.send(data, 1, tag=1)
        comm.barrier()
        return float(data.sum())  # sender must be unaffected
    if comm.rank == 1:
        got = comm.recv(0, tag=1)
        got[:] = -1.0
        comm.barrier()
        return float(got.sum())
    comm.barrier()
    return None


@needs_process
def test_process_rank_isolation_with_shm_arrays():
    """Mutating a received shm-backed array must not leak to the sender."""
    run = run_spmd(2, _mutate_prog, backend="process")
    assert run.results[0] == float(np.arange(5000, dtype=np.float64).sum())
    assert run.results[1] == -5000.0


def _mutate_after_send_prog(comm):
    # one array below the shm threshold (pickle channel), one above
    small = np.arange(100, dtype=np.float64)
    big = np.arange(5000, dtype=np.float64)
    if comm.rank == 0:
        comm.send(small, 1, tag=1)
        comm.send(big, 1, tag=2)
        small[:] = -1.0  # after-send mutation must NOT reach the receiver
        big[:] = -1.0
        comm.barrier()
        return None
    got_small = comm.recv(0, tag=1)
    got_big = comm.recv(0, tag=2)
    comm.barrier()
    return float(got_small.sum()), float(got_big.sum())


@needs_process
def test_send_snapshots_payload_at_put_time():
    """Buffered-send semantics: the receiver sees the payload as it was
    at ``send`` time on both transport channels (shm copies happen
    synchronously; the pickle channel must not serialize lazily in the
    queue feeder thread)."""
    for backend in ("thread", "process"):
        run = run_spmd(2, _mutate_after_send_prog, backend=backend)
        assert run.results[1] == (
            float(np.arange(100).sum()),
            float(np.arange(5000).sum()),
        ), backend


def _boom_prog(comm):
    if comm.rank == 2:
        raise ValueError("boom")
    return comm.rank


@needs_process
def test_process_backend_error_propagates():
    with pytest.raises(RuntimeError, match="rank 2"):
        run_spmd(4, _boom_prog, backend="process")


def _unpicklable_payload_prog(comm):
    if comm.rank == 0:
        try:
            comm.send({"big": np.zeros(5000), "cb": lambda: 1}, 1)
        except Exception:
            pass  # expected: the payload cannot be pickled
        comm.send("done", 1, tag=9)
        return None
    return comm.recv(0, tag=9)


@needs_process
def test_put_releases_shm_blocks_on_pickle_failure():
    """If pickling fails after large arrays were carved into shm blocks,
    the blocks must be unlinked, not orphaned in /dev/shm."""
    import glob

    before = set(glob.glob("/dev/shm/psm_*"))
    run = run_spmd(2, _unpicklable_payload_prog, backend="process")
    assert run.results[1] == "done"
    leaked = set(glob.glob("/dev/shm/psm_*")) - before
    assert not leaked, leaked
    # the failed send must not have been counted
    assert run.reports[0].messages_sent == 1


def _orphan_send_prog(comm):
    if comm.rank == 0:
        # large enough to ride a shm block; rank 1 never receives it
        comm.send(np.arange(20000, dtype=float), 1, tag=3)
        raise ValueError("abort after send")
    return None  # rank 1 exits without receiving


@needs_process
def test_abnormal_teardown_unlinks_registered_blocks():
    """Blocks of messages stranded by a failing run must not persist.

    The sender-side name registry lets the parent unlink whatever the
    normal receiver/drain paths could not reach."""
    import glob

    before = set(glob.glob("/dev/shm/psm_*"))
    with pytest.raises(RuntimeError, match="rank 0"):
        run_spmd(2, _orphan_send_prog, backend="process")
    leaked = set(glob.glob("/dev/shm/psm_*")) - before
    assert not leaked, leaked


@needs_process
def test_unlink_registered_sweeps_orphans():
    """The registry sweep unlinks live blocks and skips consumed names."""
    import multiprocessing

    from repro.vmpi.process_backend import (
        _attach_shm,
        _create_shm,
        _drain_registry,
        _unlink_registered,
    )

    shm = _create_shm(4096)
    name = shm.name
    shm.close()
    q = multiprocessing.get_context().SimpleQueue()
    q.put(name)
    q.put("psm_repro_already_consumed")  # unlinked long ago: skipped
    names: set = set()
    _drain_registry(q, names)
    assert name in names and len(names) == 2
    _unlink_registered(names)
    q.close()
    with pytest.raises(FileNotFoundError):
        _attach_shm(name)


def _unpicklable_prog(comm):
    return lambda: 1  # dies in the child's queue feeder, not in fn


@needs_process
def test_process_backend_unpicklable_result_fails_fast():
    """A result the queue cannot pickle must raise, not hang to timeout."""
    with pytest.raises(RuntimeError, match="without reporting a result"):
        run_spmd(2, _unpicklable_prog, backend="process", timeout=30.0)


# ----------------------------------------------------------------------
# distributed factorization parity (small Table II configuration)
# ----------------------------------------------------------------------
@pytest.fixture(scope="module")
def factor_pair():
    if not process_backend_available():
        pytest.skip("process backend unavailable")
    prob = LaplaceVolumeProblem(32)
    b = prob.random_rhs()
    opts = SRSOptions(tol=1e-9, leaf_size=32)
    out = {}
    for be in ("thread", "process"):
        fact = parallel_srs_factor(prob.kernel, 4, opts=opts, backend=be)
        out[be] = (fact, fact.solve(b))
    return out


def test_factorization_bitwise_parity(factor_pair):
    x_thread = factor_pair["thread"][1]
    x_process = factor_pair["process"][1]
    assert np.array_equal(x_thread, x_process)  # bitwise, not allclose


def test_factorization_counter_parity(factor_pair):
    rt = factor_pair["thread"][0].factor_run.reports
    rp = factor_pair["process"][0].factor_run.reports
    for a, c in zip(rt, rp):
        assert (a.messages_sent, a.bytes_sent) == (c.messages_sent, c.bytes_sent)
        assert (a.messages_received, a.bytes_received) == (
            c.messages_received,
            c.bytes_received,
        )
    st = factor_pair["thread"][0].last_solve_run
    sp = factor_pair["process"][0].last_solve_run
    assert st.total_messages == sp.total_messages
    assert st.total_bytes == sp.total_bytes


def test_factorization_skeleton_parity(factor_pair):
    ft = factor_pair["thread"][0]
    fp = factor_pair["process"][0]
    assert ft.eliminated_count() == fp.eliminated_count()
    for wt, wp in zip(ft.workers, fp.workers):
        assert wt.rank == wp.rank
        assert len(wt.records) == len(wp.records)
        for a, c in zip(wt.records, wp.records):
            assert a.box == c.box and a.level == c.level
            assert np.array_equal(a.skeleton, c.skeleton)
            assert np.array_equal(a.redundant, c.redundant)


def test_worker_result_picklable(factor_pair):
    """Process ranks ship WorkerResult through the result queue."""
    workers = factor_pair["thread"][0].workers
    clone = pickle.loads(pickle.dumps(workers))
    assert [w.rank for w in clone] == [w.rank for w in workers]
    assert all(
        np.array_equal(a.leaf_ids, b.leaf_ids) for a, b in zip(clone, workers)
    )
