"""Tests for the Laplace volume-IE application (paper Sec. V-A)."""

import numpy as np
import pytest

from repro.apps import LaplaceVolumeProblem
from repro.core import SRSOptions


@pytest.fixture(scope="module")
def prob():
    return LaplaceVolumeProblem(32)


@pytest.fixture(scope="module")
def fact(prob):
    return prob.factor(SRSOptions(tol=1e-6, leaf_size=64))


def test_setup(prob):
    assert prob.n == 1024
    assert prob.h == pytest.approx(1.0 / 32)


def test_direct_solve_accuracy(prob, fact):
    b = prob.random_rhs()
    x = fact.solve(b)
    # Table III: relres ~ 1e-4..1e-3 at eps = 1e-6 for the first-kind IE
    assert prob.relres(x, b) < 1e-2


def test_pcg_constant_iterations(prob, fact):
    """Paper: PCG reaches 1e-12 in ~4-6 iterations at eps = 1e-6."""
    b = prob.random_rhs()
    res = prob.pcg(fact, b)
    assert res.converged
    assert res.iterations <= 10
    assert prob.relres(res.x, b) < 1e-11


def test_unpreconditioned_cg_much_slower(prob, fact):
    """Paper: plain CG needs ~5 sqrt(N) iterations."""
    b = prob.random_rhs()
    pre = prob.pcg(fact, b)
    plain = prob.unpreconditioned_cg(b, maxiter=5000)
    assert plain.iterations > 10 * pre.iterations
    # 5 sqrt(N) = 160 at N = 1024; allow generous band
    assert 50 <= plain.iterations <= 1000


def test_rhs_reproducible(prob):
    assert np.array_equal(prob.random_rhs(seed=3), prob.random_rhs(seed=3))
    assert prob.random_rhs(nrhs=4).shape == (prob.n, 4)


def test_invalid_size():
    with pytest.raises(ValueError):
        LaplaceVolumeProblem(2)


def test_pcg_iterations_roughly_constant_in_n():
    """Table III: nit stays ~4-6 as N grows."""
    nits = []
    for m in (16, 32):
        p = LaplaceVolumeProblem(m)
        f = p.factor(SRSOptions(tol=1e-6, leaf_size=64))
        nits.append(p.pcg(f, p.random_rhs()).iterations)
    assert abs(nits[1] - nits[0]) <= 3
