"""Tests for the adaptive quadtree substrate (non-uniform extension)."""

import numpy as np
import pytest

from repro.geometry import clustered_points, random_points, uniform_grid
from repro.tree import AdaptiveQuadTree


def test_partition_uniform():
    t = AdaptiveQuadTree(uniform_grid(16), leaf_size=32)
    assert t.check_partition()


def test_partition_clustered():
    pts = clustered_points(1000, n_clusters=3, spread=0.02, seed=5)
    t = AdaptiveQuadTree(pts, leaf_size=25)
    assert t.check_partition()
    assert all(leaf.index.size <= 25 for leaf in t.leaves())


def test_empty_children_pruned():
    pts = clustered_points(400, n_clusters=1, spread=0.01, seed=2)
    t = AdaptiveQuadTree(pts, leaf_size=20)
    for nodes in t.levels:
        for node in nodes:
            assert node.index.size > 0


def test_adaptive_depth_exceeds_uniform_depth_for_clusters():
    """Clustered clouds refine locally deeper than a uniform cloud of equal N."""
    n = 800
    t_uni = AdaptiveQuadTree(random_points(n, seed=1), leaf_size=20)
    t_clu = AdaptiveQuadTree(
        clustered_points(n, n_clusters=1, spread=0.005, seed=1), leaf_size=20
    )
    assert t_clu.nlevels >= t_uni.nlevels


def test_neighbors_are_adjacent_same_level():
    t = AdaptiveQuadTree(uniform_grid(16), leaf_size=16)
    for nodes in t.levels[1:]:
        for node in nodes:
            for nb in t.neighbors(node):
                assert nb.level == node.level
                delta = np.abs(nb.center - node.center)
                assert max(delta) <= node.square.size * (1 + 1e-9)


def test_neighbors_match_perfect_tree_on_uniform_grid():
    """On a uniform cloud the adaptive tree reproduces grid adjacency."""
    pts = uniform_grid(16)
    t = AdaptiveQuadTree(pts, leaf_size=4, domain=None)
    # level with 8x8 nodes (side = domain/8)
    lvl = [nodes for nodes in t.levels if len(nodes) == 64]
    assert lvl, "expected a full 8x8 level"
    for node in lvl[0]:
        nbrs = t.neighbors(node)
        cx, cy = node.center / node.square.size - 0.5
        ix, iy = int(round(cx)), int(round(cy))
        expected = sum(
            1
            for dx in (-1, 0, 1)
            for dy in (-1, 0, 1)
            if (dx, dy) != (0, 0) and 0 <= ix + dx < 8 and 0 <= iy + dy < 8
        )
        assert len(nbrs) == expected


def test_dist2_neighbors_band():
    t = AdaptiveQuadTree(uniform_grid(16), leaf_size=4)
    lvl = [nodes for nodes in t.levels if len(nodes) == 64][0]
    for node in lvl[:8]:
        for mb in t.dist2_neighbors(node):
            d = max(np.abs(mb.center - node.center)) / node.square.size
            assert 1.5 < d <= 2.5 + 1e-9


def test_invalid_leaf_size():
    with pytest.raises(ValueError):
        AdaptiveQuadTree(uniform_grid(4), leaf_size=0)
