"""Tests for the Yukawa, Gaussian, and Stokeslet kernels."""

import numpy as np
import pytest
from scipy.special import k0

from repro.geometry import uniform_grid
from repro.kernels import (
    GaussianKernelMatrix,
    YukawaKernelMatrix,
    dense_matrix,
    stokeslet_matrix,
)


def test_yukawa_offdiagonal():
    m, lam = 8, 3.0
    pts = uniform_grid(m)
    h = 1.0 / m
    k = YukawaKernelMatrix(pts, h, lam)
    blk = k.block(np.array([0]), np.array([5]))
    r = np.linalg.norm(pts[0] - pts[5])
    assert blk[0, 0] == pytest.approx(h * h * k0(lam * r) / (2 * np.pi))


def test_yukawa_cell_integral_against_scipy():
    from scipy import integrate

    lam, h = 2.0, 0.2
    k = YukawaKernelMatrix(uniform_grid(5, domain=None), h, lam)
    ref, _ = integrate.dblquad(
        lambda y, x: k0(lam * np.hypot(x, y)) / (2 * np.pi),
        0.0,
        h / 2,
        lambda x: 0.0,
        lambda x: h / 2,
    )
    assert k.diagonal()[0] - k.identity_shift == pytest.approx(4 * ref, rel=1e-8)


def test_yukawa_spd():
    m = 8
    k = YukawaKernelMatrix(uniform_grid(m), 1.0 / m, 5.0)
    a = dense_matrix(k)
    w = np.linalg.eigvalsh(a)
    assert w.min() > 0


def test_gaussian_matrix_entries():
    m = 8
    pts = uniform_grid(m)
    k = GaussianKernelMatrix(pts, 1.0 / m, sigma=0.1, shift=2.0)
    a = dense_matrix(k)
    r2 = np.sum((pts[0] - pts[3]) ** 2)
    assert a[0, 3] == pytest.approx((1.0 / m) ** 2 * np.exp(-r2 / 0.02))
    assert a[0, 0] == pytest.approx(2.0 + (1.0 / m) ** 2)


def test_gaussian_well_conditioned():
    m = 8
    k = GaussianKernelMatrix(uniform_grid(m), 1.0 / m, sigma=0.05, shift=1.0)
    assert np.linalg.cond(dense_matrix(k)) < 10


def test_gaussian_spawn():
    m = 8
    k = GaussianKernelMatrix(uniform_grid(m), 1.0 / m, sigma=0.07, shift=1.5)
    sub = np.array([0, 10, 20])
    sp = k.spawn(k.points[sub], {})
    assert np.allclose(sp.block(np.arange(3), np.arange(3)), k.block(sub, sub))


# -- Stokeslet ---------------------------------------------------------
def test_stokeslet_shape_and_symmetry():
    x = np.array([[0.0, 0.0], [1.0, 0.0]])
    g = stokeslet_matrix(x, x)
    assert g.shape == (4, 4)
    assert np.allclose(g, g.T)


def test_stokeslet_known_value():
    # points separated along x by r: G_xx = (-ln r + 1)/4pi, G_yy = -ln r/4pi
    r = 0.5
    x = np.array([[0.0, 0.0]])
    y = np.array([[r, 0.0]])
    g = stokeslet_matrix(x, y)
    assert g[0, 0] == pytest.approx((-np.log(r) + 1.0) / (4 * np.pi))
    assert g[1, 1] == pytest.approx(-np.log(r) / (4 * np.pi))
    assert g[0, 1] == pytest.approx(0.0)


def test_stokeslet_coincident_points_zeroed():
    x = np.array([[0.3, 0.3]])
    g = stokeslet_matrix(x, x)
    assert np.all(g == 0.0)


def test_stokeslet_viscosity_scaling():
    x = np.array([[0.0, 0.0]])
    y = np.array([[0.4, 0.1]])
    assert np.allclose(stokeslet_matrix(x, y, viscosity=2.0) * 2.0, stokeslet_matrix(x, y))
