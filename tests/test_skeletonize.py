"""Unit tests for the strong skeletonization operator on one box."""

import numpy as np
import pytest

from repro.core import SRSOptions
from repro.core.interactions import InteractionStore
from repro.core.proxy import proxy_points_for_box
from repro.core.skel import skeletonize_box
from repro.geometry import uniform_grid
from repro.kernels import GaussianKernelMatrix
from repro.tree import QuadTree


@pytest.fixture
def env():
    m = 16
    pts = uniform_grid(m)
    kernel = GaussianKernelMatrix(pts, 1.0 / m, sigma=0.05, shift=1.0)
    tree = QuadTree(pts, 2)  # 4x4 leaves, 16 points each
    active = {c: tree.leaf_points(*c) for c in tree.nonempty_leaves()}
    store = InteractionStore(kernel, active, max_modified_distance=None)
    opts = SRSOptions(tol=1e-10, leaf_size=16)
    return kernel, tree, store, opts


def _skel(env, box):
    kernel, tree, store, opts = env
    nbrs = tree.neighbors(2, *box)
    m_boxes = tree.dist2_neighbors(2, *box)
    proxy = proxy_points_for_box(kernel, tree.box_center(2, *box), tree.box_side(2), opts)
    return skeletonize_box(store, kernel, box, nbrs, m_boxes, proxy, opts, level=2)


def test_record_structure(env):
    kernel, tree, store, opts = env
    rec = _skel(env, (0, 0))
    assert rec is not None
    assert rec.level == 2 and rec.box == (0, 0)
    n_r, n_s = rec.redundant.size, rec.skeleton.size
    assert n_r + n_s == 16
    assert rec.T.shape == (n_s, n_r)
    assert rec.x_cr.shape[1] == n_r
    assert rec.x_rc.shape[0] == n_r
    assert rec.x_cr.shape[0] == rec.cluster.size
    # segments tile the cluster
    assert rec.cluster_segments[0][0] == (0, 0)
    assert rec.cluster_segments[-1][2] == rec.cluster.size


def test_active_restricted_to_skeleton(env):
    kernel, tree, store, opts = env
    rec = _skel(env, (1, 1))
    assert np.array_equal(store.active_of((1, 1)), rec.skeleton)


def test_neighbors_modified_far_untouched(env):
    kernel, tree, store, opts = env
    _skel(env, (1, 1))
    # all 8 neighbors of (1,1) got Schur updates
    for nb in tree.neighbors(2, 1, 1):
        assert store.is_modified(nb, nb) or store.is_modified((1, 1), nb)
    # fully-far boxes untouched
    assert not store.is_modified((3, 3), (3, 3))


def test_update_log_matches_mutations(env):
    kernel, tree, store, opts = env
    log = []
    box = (2, 2)
    nbrs = tree.neighbors(2, *box)
    m_boxes = tree.dist2_neighbors(2, *box)
    proxy = proxy_points_for_box(kernel, tree.box_center(2, *box), tree.box_side(2), opts)
    rec = skeletonize_box(
        store, kernel, box, nbrs, m_boxes, proxy, opts, level=2, update_log=log
    )
    kinds = [op[0] for op in log]
    assert kinds[0] == "restrict"
    assert all(k == "delta" for k in kinds[1:])
    # replaying the log on a fresh store reproduces the state
    active2 = {c: tree.leaf_points(*c) for c in tree.nonempty_leaves()}
    store2 = InteractionStore(kernel, active2, max_modified_distance=None)
    for op in log:
        if op[0] == "restrict":
            store2.restrict(op[1], op[2])
        else:
            _, bi, bj, d = op
            store2.get_writable(bi, bj)[...] -= d
    for key in store.blocks:
        assert np.allclose(store.blocks[key], store2.blocks[key]), key


def test_empty_far_field_eliminates_everything(env):
    """With no compression rows, every index is redundant (plain LU)."""
    kernel, tree, store, opts = env
    box = (0, 0)
    rec = skeletonize_box(
        store, kernel, box, tree.neighbors(2, *box), [], None, opts, level=2
    )
    assert rec.skeleton.size == 0
    assert rec.redundant.size == 16
    assert store.nactive(box) == 0


def test_elimination_correctness_against_dense(env):
    """One skeletonization step preserves the Schur complement.

    After eliminating R of box B, the remaining system must equal the
    dense Schur complement of the sparsified matrix (up to ID error).
    """
    kernel, tree, store, opts = env
    from repro.kernels import dense_matrix

    a = dense_matrix(kernel)
    box = (1, 2)
    bidx = store.active_of(box).copy()
    rec = _skel(env, box)
    rng = np.random.default_rng(0)
    # verify: apply_v then apply_w with no other boxes processed should
    # be equivalent to eliminating R exactly (check via residual on a
    # system restricted to R)
    b = rng.standard_normal(kernel.n)
    x = b.copy()
    rec.apply_v(x)
    rec.apply_w(x)
    # rows of R should now satisfy the original equation approximately:
    # A[R, :] x ~= b[R] requires the full solve; instead check the
    # eliminated-variable reconstruction identity:
    # X_RR x_R_final + X_RC x_C = v_R  is built into apply_w; here we
    # simply assert that apply_v/apply_w ran and changed only R, S, N
    untouched = np.setdiff1d(np.arange(kernel.n), np.concatenate([rec.redundant, rec.cluster]))
    assert np.allclose(x[untouched], b[untouched])
