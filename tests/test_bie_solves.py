"""End-to-end BIE solves: convergence, RS-S accuracy, GMRES counts."""

import numpy as np
import pytest

from repro.bie import (
    Circle,
    InteriorDirichletProblem,
    Kite,
    SoundSoftScattering,
    StarCurve,
    harmonic_exponential,
    harmonic_polynomial,
)
from repro.bie.solves import point_source_field
from repro.core import SRSOptions


# ----------------------------------------------------------------------
# interior Laplace Dirichlet
# ----------------------------------------------------------------------
def circle_error(n: int) -> float:
    prob = InteriorDirichletProblem(Circle(0.8, center=(0.1, -0.2)), n)
    tau = prob.solve_dense(prob.boundary_data(harmonic_exponential))
    tgt = prob.interior_targets()
    u = prob.evaluate(tau, tgt)
    return float(np.max(np.abs(u - harmonic_exponential(tgt))))


def test_trapezoid_spectral_convergence_on_circle():
    """Smooth-kernel Nystrom converges faster than any power of h."""
    e24, e48 = circle_error(24), circle_error(48)
    assert e48 < 1e-12
    assert e24 / max(e48, 1e-16) > 1e3


def test_star_harmonic_polynomial_dense():
    prob = InteriorDirichletProblem(StarCurve(1.0, 0.3, 5), 512)
    tau = prob.solve_dense(prob.boundary_data(lambda p: harmonic_polynomial(p, 4)))
    tgt = prob.interior_targets()
    u = prob.evaluate(tau, tgt)
    ref = harmonic_polynomial(tgt, 4)
    assert np.max(np.abs(u - ref)) / np.max(np.abs(ref)) < 1e-10


def test_star_dirichlet_rss_direct_accuracy():
    """Acceptance criterion: relative error <= 1e-8 on the star at
    N ~ 2048 with the RS-S direct solve."""
    prob = InteriorDirichletProblem(StarCurve(1.0, 0.3, 5), 2048)
    fact = prob.factor(SRSOptions(tol=1e-10))
    assert fact.eliminated_count() == 2048
    err = prob.solve_error(harmonic_exponential, fact)
    assert err <= 1e-8


def test_dirichlet_solve_is_second_kind():
    """The Nystrom matrix of -1/2 I + D stays well conditioned as n grows."""
    conds = []
    for n in (128, 256):
        prob = InteriorDirichletProblem(Circle(), n)
        conds.append(np.linalg.cond(prob.dense()))
    assert conds[1] < 1.5 * conds[0]
    assert conds[1] < 50


def test_relres_consistency():
    prob = InteriorDirichletProblem(StarCurve(1.0, 0.3, 5), 256)
    f = prob.boundary_data(harmonic_exponential)
    tau = prob.solve_dense(f)
    assert prob.relres(tau, f) < 1e-12


# ----------------------------------------------------------------------
# exterior sound-soft Helmholtz (CFIE)
# ----------------------------------------------------------------------
def cfie_point_source_error(n: int, curve=None, kappa: float = 8.0) -> float:
    prob = SoundSoftScattering(curve or StarCurve(1.0, 0.3, 5), n, kappa)
    sigma = prob.solve_dense(prob.rhs_point_source())
    tgt = prob.exterior_targets()
    ref = point_source_field(tgt, prob.curve.interior_point(), kappa)
    u = prob.scattered_field(sigma, tgt)
    return float(np.max(np.abs(u - ref)) / np.max(np.abs(ref)))


def test_cfie_kapur_rokhlin_convergence():
    """Errors fall at roughly the 6th-order Kapur--Rokhlin rate."""
    e256 = cfie_point_source_error(256)
    e512 = cfie_point_source_error(512)
    assert e512 < 1e-4
    assert e256 / e512 > 2**4.5


def test_cfie_kite_obstacle():
    assert cfie_point_source_error(512, curve=Kite(), kappa=6.0) < 1e-4


@pytest.fixture(scope="module")
def star_cfie():
    prob = SoundSoftScattering(StarCurve(1.0, 0.3, 5), 1024, kappa=8.0)
    fact = prob.factor(SRSOptions(tol=1e-8))
    return prob, fact


def test_cfie_rss_direct_matches_dense(star_cfie):
    prob, fact = star_cfie
    assert prob.point_source_error(fact) < 1e-6


def test_cfie_preconditioned_gmres_iteration_counts(star_cfie):
    """Acceptance criterion: RS-S-preconditioned CFIE GMRES converges in
    <= 10 iterations where the unpreconditioned baseline needs >= 3x."""
    prob, fact = star_cfie
    b = prob.rhs_plane_wave()
    pre = prob.pgmres(fact, b)
    assert pre.converged
    assert pre.iterations <= 10
    plain = prob.unpreconditioned_gmres(b)
    assert plain.converged
    assert plain.iterations >= 3 * pre.iterations
    # both reach the same solution
    sigma_p = prob.matvec(pre.x) - b
    assert np.linalg.norm(sigma_p) / np.linalg.norm(b) < 1e-9


def test_cfie_gmres_with_treecode_matvec(star_cfie):
    """The O(N log N) treecode drives the same preconditioned iteration."""
    prob, fact = star_cfie
    b = prob.rhs_plane_wave()
    res = prob.pgmres(fact, b, matvec=prob.treecode(), tol=1e-8)
    assert res.converged
    assert res.iterations <= 10
    assert prob.relres(res.x, b) < 1e-7


def test_scattered_field_radiates():
    """The scattered field decays like 1/sqrt(r) away from the obstacle."""
    prob = SoundSoftScattering(StarCurve(1.0, 0.3, 5), 1024, kappa=6.0)
    sigma = prob.solve_dense(prob.rhs_plane_wave())
    theta = np.linspace(0, 2 * np.pi, 16, endpoint=False)
    ring = lambda r: r * np.column_stack([np.cos(theta), np.sin(theta)])
    a5 = np.max(np.abs(prob.scattered_field(sigma, ring(5.0))))
    a40 = np.max(np.abs(prob.scattered_field(sigma, ring(40.0))))
    assert a40 < 0.6 * a5  # ~ sqrt(5/40) ~ 0.35, with directivity slack
    assert np.all(np.isfinite(prob.total_field(sigma, ring(3.0))))


def test_bounding_box_tree_domain():
    """Curves outside the unit square get a bounding-box tree domain."""
    prob = SoundSoftScattering(Kite(scale=1.0, center=(-2.0, 3.0)), 512, kappa=5.0)
    dom = prob.tree.domain
    assert dom.contains(prob.bd.points).all()
    assert dom.size < 4.0  # tight box, not the unit square
    fact = prob.factor(SRSOptions(tol=1e-8))
    assert prob.point_source_error(fact) < 1e-4
