"""Unit tests for pieces of the distributed worker protocol."""

import numpy as np
import pytest

from repro.core.interactions import InteractionStore
from repro.geometry import uniform_grid
from repro.kernels import GaussianKernelMatrix
from repro.parallel.ownership import LevelLayout
from repro.parallel.worker import _apply_ops, _filter_ops
from repro.tree import QuadTree


@pytest.fixture
def layout():
    return LevelLayout(3, 4)  # 8x8 boxes, 2x2 ranks, regions 4x4


def test_filter_restricts_by_distance(layout):
    # box (3, 0) is on rank 0, distance 1 from rank 1's region (x >= 4)
    log = [("restrict", (3, 0), np.array([0, 1]))]
    rank1 = layout.owner((4, 0))
    kept = _filter_ops(log, rank1, layout)
    assert len(kept) == 1
    # box (0, 0) is distance 4 away -> filtered out
    log = [("restrict", (0, 0), np.array([0]))]
    assert _filter_ops(log, rank1, layout) == []


def test_filter_deltas_by_ownership(layout):
    rank1 = layout.owner((4, 0))
    d = np.zeros((2, 2))
    log = [
        ("delta", (3, 0), (4, 0), d),  # one side owned by rank1 -> kept
        ("delta", (3, 0), (3, 1), d),  # both on rank 0 -> dropped
    ]
    kept = _filter_ops(log, rank1, layout)
    assert len(kept) == 1
    assert kept[0][2] == (4, 0)


def test_apply_ops_replays_restrict_and_delta(layout):
    m = 16
    pts = uniform_grid(m)
    kernel = GaussianKernelMatrix(pts, 1.0 / m, sigma=0.1)
    tree = QuadTree(pts, 3)
    active = {c: tree.leaf_points(*c) for c in tree.nonempty_leaves()}
    store = InteractionStore(kernel, active, max_modified_distance=None)
    me = layout.owner((0, 0))

    b1, b2 = (3, 0), (4, 0)
    n1 = store.nactive(b1)
    delta = np.ones((n1 - 1, store.nactive(b2)))
    ops = [
        ("restrict", b1, np.arange(1, n1)),  # drop first active index
        ("delta", b1, b2, delta),
    ]
    before = store.get(b1, b2).copy()
    _apply_ops(store, ops, layout, layout.owner(b1))
    after = store.get(b1, b2)
    assert after.shape == (n1 - 1, store.nactive(b2))
    assert np.allclose(after, before[1:, :] - 1.0)


def test_apply_ops_skips_unheld_pairs(layout):
    m = 16
    pts = uniform_grid(m)
    kernel = GaussianKernelMatrix(pts, 1.0 / m, sigma=0.1)
    tree = QuadTree(pts, 3)
    active = {c: tree.leaf_points(*c) for c in tree.nonempty_leaves()}
    store = InteractionStore(kernel, active, max_modified_distance=None)
    rank0 = layout.owner((0, 0))
    # pair fully owned by the other rank: must be ignored by rank 0
    b1, b2 = (4, 0), (5, 0)
    ops = [("delta", b1, b2, np.ones((store.nactive(b1), store.nactive(b2))))]
    _apply_ops(store, ops, layout, rank0)
    assert not store.is_modified(b1, b2)


def test_apply_ops_shape_mismatch_raises(layout):
    m = 16
    pts = uniform_grid(m)
    kernel = GaussianKernelMatrix(pts, 1.0 / m, sigma=0.1)
    tree = QuadTree(pts, 3)
    active = {c: tree.leaf_points(*c) for c in tree.nonempty_leaves()}
    store = InteractionStore(kernel, active, max_modified_distance=None)
    b1, b2 = (3, 0), (4, 0)
    ops = [("delta", b1, b2, np.ones((1, 1)))]
    with pytest.raises(RuntimeError, match="shape mismatch"):
        _apply_ops(store, ops, layout, layout.owner(b1))


def test_cluster_segments_cover_cluster():
    """BoxRecord segments partition the cluster exactly."""
    from repro.core import SRSOptions, srs_factor

    m = 16
    pts = uniform_grid(m)
    kernel = GaussianKernelMatrix(pts, 1.0 / m, sigma=0.05, shift=1.0)
    fact = srs_factor(kernel, opts=SRSOptions(tol=1e-8, leaf_size=16))
    for rec in fact.records:
        if rec.cluster.size == 0:
            continue
        segs = rec.cluster_segments
        assert segs[0][1] == 0
        assert segs[-1][2] == rec.cluster.size
        for (b1, s1, e1), (b2, s2, e2) in zip(segs, segs[1:]):
            assert e1 == s2
        # first segment is the box's own skeleton
        assert segs[0][0] == rec.box
        assert np.array_equal(rec.cluster[segs[0][1] : segs[0][2]], rec.skeleton)
