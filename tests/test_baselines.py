"""Tests for the block-Jacobi baseline preconditioner."""

import numpy as np
import pytest

from repro.apps import LaplaceVolumeProblem
from repro.baselines import BlockJacobiPreconditioner
from repro.core import SRSOptions
from repro.geometry import uniform_grid
from repro.iterative import cg
from repro.kernels import GaussianKernelMatrix, LaplaceKernelMatrix
from repro.tree import QuadTree


def test_exact_on_block_diagonal_kernel(rng):
    """For a kernel with negligible cross-box coupling, M^{-1} ~ A^{-1}."""
    m = 16
    k = GaussianKernelMatrix(uniform_grid(m), 1.0 / m, sigma=0.005, shift=1.0)
    pre = BlockJacobiPreconditioner(k, leaf_size=16)
    from repro.kernels import dense_matrix

    a = dense_matrix(k)
    b = rng.standard_normal(k.n)
    x = pre.solve(b)
    assert np.linalg.norm(a @ x - b) / np.linalg.norm(b) < 1e-4


def test_reduces_cg_iterations_vs_plain():
    prob = LaplaceVolumeProblem(32)
    pre = BlockJacobiPreconditioner(prob.kernel, leaf_size=64)
    b = prob.random_rhs()
    plain = cg(prob.matvec, b, tol=1e-10, maxiter=5000)
    jac = cg(prob.matvec, b, preconditioner=pre.solve, tol=1e-10, maxiter=5000)
    assert jac.converged
    assert jac.iterations < plain.iterations


def test_weaker_than_srs_preconditioner():
    """RS-S converges in O(1) iterations; block-Jacobi needs far more."""
    prob = LaplaceVolumeProblem(32)
    fact = prob.factor(SRSOptions(tol=1e-6, leaf_size=64))
    pre = BlockJacobiPreconditioner(prob.kernel, leaf_size=64)
    b = prob.random_rhs()
    srs = cg(prob.matvec, b, preconditioner=fact.solve, tol=1e-10, maxiter=5000)
    jac = cg(prob.matvec, b, preconditioner=pre.solve, tol=1e-10, maxiter=5000)
    assert srs.iterations * 3 < jac.iterations


def test_jacobi_iterations_grow_with_n():
    """Unlike RS-S (constant nit), block-Jacobi degrades with N."""
    its = []
    for m in (16, 32):
        prob = LaplaceVolumeProblem(m)
        pre = BlockJacobiPreconditioner(prob.kernel, leaf_size=64)
        res = cg(prob.matvec, prob.random_rhs(), preconditioner=pre.solve, tol=1e-8, maxiter=5000)
        its.append(res.iterations)
    assert its[1] > its[0]


def test_multi_rhs(rng):
    m = 16
    k = LaplaceKernelMatrix(uniform_grid(m), 1.0 / m)
    pre = BlockJacobiPreconditioner(k, leaf_size=32)
    bs = rng.standard_normal((k.n, 3))
    xs = pre.solve(bs)
    assert xs.shape == bs.shape
    for j in range(3):
        assert np.allclose(xs[:, j], pre.solve(bs[:, j]))


def test_validation():
    k = LaplaceKernelMatrix(uniform_grid(8), 1.0 / 8)
    wrong = QuadTree(uniform_grid(4), 2)
    with pytest.raises(ValueError):
        BlockJacobiPreconditioner(k, tree=wrong)
    pre = BlockJacobiPreconditioner(k, leaf_size=16)
    with pytest.raises(ValueError):
        pre.solve(np.zeros(3))
    assert pre.memory_bytes() > 0
