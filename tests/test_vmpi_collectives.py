"""Tests for vmpi collectives against numpy references."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.vmpi import run_spmd


@pytest.mark.parametrize("p", [1, 2, 3, 4, 8, 16])
def test_bcast(p):
    def prog(comm):
        data = {"v": np.arange(10)} if comm.rank == 0 else None
        out = comm.bcast(data, 0)
        return out["v"].sum()

    run = run_spmd(p, prog)
    assert all(r == 45 for r in run.results)


@pytest.mark.parametrize("p", [1, 2, 5, 8])
def test_bcast_nonzero_root(p):
    root = p - 1

    def prog(comm):
        data = comm.rank if comm.rank == root else None
        return comm.bcast(data, root)

    run = run_spmd(p, prog)
    assert all(r == root for r in run.results)


@pytest.mark.parametrize("p", [1, 2, 4, 7, 16])
def test_reduce_sum(p):
    def prog(comm):
        return comm.reduce(comm.rank + 1, lambda a, b: a + b, 0)

    run = run_spmd(p, prog)
    assert run.results[0] == p * (p + 1) // 2
    assert all(r is None for r in run.results[1:])


@pytest.mark.parametrize("p", [2, 4, 9])
def test_allreduce_array(p):
    def prog(comm):
        return comm.allreduce(np.full(4, comm.rank), lambda a, b: a + b)

    run = run_spmd(p, prog)
    expected = sum(range(p))
    for r in run.results:
        assert np.all(r == expected)


@pytest.mark.parametrize("p", [1, 3, 4, 8])
def test_gather_order(p):
    def prog(comm):
        return comm.gather(f"r{comm.rank}", 0)

    run = run_spmd(p, prog)
    assert run.results[0] == [f"r{i}" for i in range(p)]


@pytest.mark.parametrize("p", [1, 4, 6])
def test_allgather(p):
    def prog(comm):
        return comm.allgather(comm.rank * 2)

    run = run_spmd(p, prog)
    for r in run.results:
        assert r == [2 * i for i in range(p)]


@pytest.mark.parametrize("p", [1, 2, 4, 8, 16])
def test_scatter(p):
    def prog(comm):
        payload = [np.full(3, i) for i in range(comm.size)] if comm.rank == 0 else None
        mine = comm.scatter(payload, 0)
        return int(mine[0])

    run = run_spmd(p, prog)
    assert run.results == list(range(p))


def test_scatter_requires_full_list():
    def prog(comm):
        # non-root ranks would block on the scatter message that never
        # comes (root raises); fail them fast instead of waiting
        if comm.rank != 0:
            return None
        comm.scatter([1], 0)

    with pytest.raises(RuntimeError, match="exactly one payload"):
        run_spmd(2, prog)


def test_barrier_orders_phases():
    """After a barrier, all pre-barrier sends are receivable."""

    def prog(comm):
        if comm.rank == 0:
            comm.send("hello", 1, tag=4)
        comm.barrier()
        if comm.rank == 1:
            return comm.recv(0, tag=4)
        return None

    run = run_spmd(3, prog)
    assert run.results[1] == "hello"


@settings(max_examples=15, deadline=None)
@given(
    st.integers(min_value=1, max_value=8),
    st.lists(st.integers(min_value=-100, max_value=100), min_size=8, max_size=8),
)
def test_allreduce_matches_numpy_property(p, values):
    vals = values[:p]

    def prog(comm):
        return comm.allreduce(vals[comm.rank], lambda a, b: a + b)

    run = run_spmd(p, prog)
    assert all(r == sum(vals) for r in run.results)


def test_collectives_compose_repeatedly():
    """Many collectives in sequence don't cross-talk."""

    def prog(comm):
        out = []
        for k in range(5):
            out.append(comm.allreduce(comm.rank + k, lambda a, b: a + b))
            comm.barrier()
        return out

    p = 4
    run = run_spmd(p, prog)
    for r in run.results:
        assert r == [sum(range(p)) + k * p for k in range(5)]
