"""Forward application of the compressed operator and dtype promotion."""

import numpy as np
import pytest

from repro.core import SRSOptions, srs_factor
from repro.geometry import uniform_grid
from repro.kernels import (
    HelmholtzKernelMatrix,
    LaplaceKernelMatrix,
    dense_matrix,
)
from repro.kernels.helmholtz import gaussian_bump


def relerr(a, b):
    return np.linalg.norm(a - b) / np.linalg.norm(b)


@pytest.fixture(scope="module")
def laplace_setup():
    kernel = LaplaceKernelMatrix(uniform_grid(24), 1.0 / 24)
    fact = srs_factor(kernel, opts=SRSOptions(tol=1e-10, leaf_size=32))
    return kernel, fact, dense_matrix(kernel)


def test_forward_matvec_matches_dense(laplace_setup):
    _, fact, dense = laplace_setup
    rng = np.random.default_rng(0)
    x = rng.standard_normal(dense.shape[0])
    assert relerr(fact.matvec(x), dense @ x) < 1e-7


def test_forward_matvec_blocked(laplace_setup):
    _, fact, dense = laplace_setup
    rng = np.random.default_rng(1)
    xb = rng.standard_normal((dense.shape[0], 4))
    out = fact.matvec(xb)
    assert out.shape == xb.shape
    assert relerr(out, dense @ xb) < 1e-7


def test_forward_matvec_roundtrip(laplace_setup):
    """solve(matvec(x)) == x to machine precision: the sweeps invert exactly."""
    _, fact, _ = laplace_setup
    rng = np.random.default_rng(2)
    x = rng.standard_normal(fact.n)
    assert relerr(fact.solve(fact.matvec(x)), x) < 1e-12
    assert relerr(fact.matvec(fact.solve(x)), x) < 1e-12


def test_complex_rhs_on_real_factorization(laplace_setup):
    """Complex RHS through a real-dtype factorization: the imaginary part
    must survive both solve and matvec (dtype promotion regression)."""
    _, fact, dense = laplace_setup
    rng = np.random.default_rng(3)
    b = rng.standard_normal(fact.n) + 1j * rng.standard_normal(fact.n)
    x = fact.solve(b)
    assert np.iscomplexobj(x)
    assert np.linalg.norm(x.imag) > 0
    assert relerr(dense @ x, b) < 1e-7
    y = fact.matvec(b)
    assert np.iscomplexobj(y)
    assert relerr(y, dense @ b) < 1e-7


def test_forward_matvec_complex_kernel():
    pts = uniform_grid(20)
    kernel = HelmholtzKernelMatrix(pts, 1.0 / 20, 6.0, b=gaussian_bump(pts))
    fact = srs_factor(kernel, opts=SRSOptions(tol=1e-10, leaf_size=32))
    dense = dense_matrix(kernel)
    rng = np.random.default_rng(4)
    x = rng.standard_normal(fact.n) + 1j * rng.standard_normal(fact.n)
    assert relerr(fact.matvec(x), dense @ x) < 1e-7


def test_forward_matvec_shape_validation(laplace_setup):
    _, fact, _ = laplace_setup
    with pytest.raises(ValueError):
        fact.matvec(np.zeros(3))
