"""Kapur--Rokhlin corrected trapezoid rule tests."""

import numpy as np
import pytest

from repro.bie.quadrature import (
    circular_index_distance,
    kapur_rokhlin_gamma,
    kr_quadrature_row,
    kr_weight_factors,
)


def log_kernel_error(n: int, order: int) -> float:
    """Error of the corrected rule on a known log-singular integral:
    ``int_0^{2pi} ln(4 sin^2(s/2)) cos(3 s) ds = -2 pi / 3``
    (from the Fourier series ``ln(4 sin^2(t/2)) = -2 sum cos(m t)/m``)."""
    s = 2.0 * np.pi * np.arange(n) / n
    with np.errstate(divide="ignore"):
        f = np.log(4.0 * np.sin(s / 2.0) ** 2) * np.cos(3.0 * s)
    f[0] = 0.0
    w = kr_quadrature_row(n, 0, order)
    return abs(float(np.sum(w * f)) + 2.0 * np.pi / 3.0)


@pytest.mark.parametrize("order,expected_rate", [(2, 1.5), (6, 5.0), (10, 8.0)])
def test_kr_convergence_order(order, expected_rate):
    e1 = log_kernel_error(40, order)
    e2 = log_kernel_error(80, order)
    assert np.log2(e1 / e2) > expected_rate


def test_kr_order6_absolute_accuracy():
    assert log_kernel_error(160, 6) < 1e-6
    assert log_kernel_error(160, 10) < 1e-9


def test_punctured_trapezoid_alone_is_first_order():
    """Without corrections the punctured rule stalls at O(h log h)."""
    def plain_error(n):
        s = 2.0 * np.pi * np.arange(n) / n
        with np.errstate(divide="ignore"):
            f = np.log(4.0 * np.sin(s / 2.0) ** 2) * np.cos(3.0 * s)
        f[0] = 0.0
        return abs(np.sum(f) * 2.0 * np.pi / n + 2.0 * np.pi / 3.0)

    assert log_kernel_error(160, 6) < 1e-3 * plain_error(160)


def test_gamma_tables():
    for order in (2, 6, 10):
        g = kapur_rokhlin_gamma(order)
        assert g.shape == (order,)
    with pytest.raises(ValueError):
        kapur_rokhlin_gamma(4)


def test_circular_distance_wraps():
    n = 16
    d = circular_index_distance(np.array([0, 1, 15]), np.array([0, 15]), n)
    assert d.tolist() == [[0, 1], [1, 2], [1, 0]]


def test_weight_factor_matrix_structure():
    n = 64
    idx = np.arange(n)
    f = kr_weight_factors(idx, idx, n, 6)
    gamma = kapur_rokhlin_gamma(6)
    assert np.all(np.diag(f) == 0.0)
    # first off-diagonals carry 1 + gamma_1, including the periodic wrap
    assert np.isclose(f[0, 1], 1.0 + gamma[0])
    assert np.isclose(f[0, n - 1], 1.0 + gamma[0])
    assert np.isclose(f[0, 6], 1.0 + gamma[5])
    # beyond the band the factor is exactly 1
    assert np.all(f[0, 7 : n - 6] == 1.0)
    # symmetric in the index distance
    assert np.allclose(f, f.T)


def test_weight_factors_need_enough_nodes():
    with pytest.raises(ValueError):
        kr_weight_factors(np.arange(10), np.arange(10), 10, 6)
