"""Tests for the interpolative decomposition, incl. hypothesis contracts."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.linalg import interp_decomp
from repro.linalg.interpolative import id_error


def low_rank_matrix(m, n, r, seed, complex_=False):
    rng = np.random.default_rng(seed)
    if complex_:
        left = rng.standard_normal((m, r)) + 1j * rng.standard_normal((m, r))
        right = rng.standard_normal((r, n)) + 1j * rng.standard_normal((r, n))
        return left @ right
    return rng.standard_normal((m, r)) @ rng.standard_normal((r, n))


def test_exact_rank_recovery():
    a = low_rank_matrix(50, 30, 7, 0)
    dec = interp_decomp(a, 1e-12)
    assert dec.rank == 7
    assert id_error(a, dec) < 1e-10


def test_partition_of_columns():
    a = low_rank_matrix(40, 25, 5, 1)
    dec = interp_decomp(a, 1e-10)
    merged = np.sort(np.concatenate([dec.skeleton, dec.redundant]))
    assert np.array_equal(merged, np.arange(25))


def test_reconstruct_matches(rng):
    a = low_rank_matrix(30, 20, 4, 2)
    dec = interp_decomp(a, 1e-12)
    assert np.allclose(dec.reconstruct(a), a, atol=1e-9)


def test_complex_matrix():
    a = low_rank_matrix(40, 30, 6, 3, complex_=True)
    dec = interp_decomp(a, 1e-12)
    assert dec.rank == 6
    assert id_error(a, dec) < 1e-10


def test_zero_rows_all_redundant():
    a = np.zeros((0, 12))
    dec = interp_decomp(a, 1e-6)
    assert dec.rank == 0
    assert dec.redundant.size == 12
    assert dec.T.shape == (0, 12)


def test_zero_matrix_all_redundant():
    dec = interp_decomp(np.zeros((8, 5)), 1e-6)
    assert dec.rank == 0


def test_zero_columns():
    dec = interp_decomp(np.zeros((8, 0)), 1e-6)
    assert dec.rank == 0 and dec.redundant.size == 0


def test_full_rank_keeps_everything():
    rng = np.random.default_rng(4)
    a = rng.standard_normal((20, 10))
    dec = interp_decomp(a, 1e-14)
    assert dec.rank == 10
    assert dec.redundant.size == 0
    assert dec.T.shape == (10, 0)


def test_max_rank_cap():
    a = low_rank_matrix(30, 20, 10, 5)
    dec = interp_decomp(a, 0.0, max_rank=4)
    assert dec.rank == 4


def test_tolerance_monotonicity():
    rng = np.random.default_rng(6)
    # geometric singular value decay
    u, _ = np.linalg.qr(rng.standard_normal((40, 40)))
    v, _ = np.linalg.qr(rng.standard_normal((30, 30)))
    s = np.zeros((40, 30))
    np.fill_diagonal(s, 10.0 ** -np.arange(30))
    a = u @ s @ v.T
    ranks = [interp_decomp(a, tol).rank for tol in (1e-3, 1e-6, 1e-9)]
    assert ranks[0] < ranks[1] < ranks[2]


def test_randomized_matches_cpqr_rank():
    a = low_rank_matrix(500, 40, 12, 7)
    det = interp_decomp(a, 1e-10)
    rnd = interp_decomp(a, 1e-10, method="randomized", max_rank=20)
    assert rnd.rank == det.rank == 12
    assert id_error(a, rnd) < 1e-8


def test_unknown_method_rejected():
    with pytest.raises(ValueError):
        interp_decomp(np.eye(3), 1e-6, method="magic")


def test_negative_tol_rejected():
    with pytest.raises(ValueError):
        interp_decomp(np.eye(3), -1.0)


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=30),
    st.integers(min_value=1, max_value=20),
    st.integers(min_value=1, max_value=8),
    st.integers(min_value=0, max_value=10_000),
)
def test_id_error_contract(m, n, r, seed):
    """||A[:,R] - A[:,S] T|| <= c * tol * ||A|| for generated low-rank A."""
    a = low_rank_matrix(m, n, min(r, m, n), seed)
    tol = 1e-8
    dec = interp_decomp(a, tol)
    # CPQR ID guarantee is within a modest polynomial factor of tol
    assert id_error(a, dec) <= 1e4 * tol + 1e-12


@settings(max_examples=30, deadline=None)
@given(
    st.integers(min_value=1, max_value=25),
    st.integers(min_value=1, max_value=15),
    st.integers(min_value=0, max_value=10_000),
)
def test_skeleton_redundant_partition_property(m, n, seed):
    rng = np.random.default_rng(seed)
    a = rng.standard_normal((m, n))
    dec = interp_decomp(a, 1e-6)
    assert set(dec.skeleton.tolist()).isdisjoint(dec.redundant.tolist())
    assert dec.skeleton.size + dec.redundant.size == n
    assert dec.T.shape == (dec.skeleton.size, dec.redundant.size)
