"""Content-fingerprint tests: equal operators hash equal, perturbed don't.

The serving cache's correctness rests on the fingerprint being a
*content* hash: two independently constructed problems over identical
geometry/kernel parameters must collide (so callers share one
factorization), and any perturbation — point set, kernel scalar, tree
depth, solve options — must not (so nobody gets someone else's
inverse).
"""

import numpy as np

from repro.api import SolveConfig, setup_fingerprint
from repro.api.fingerprint import fingerprint_kernel, fingerprint_problem
from repro.apps import LaplaceVolumeProblem, ScatteringProblem
from repro.bie import Circle, InteriorDirichletProblem, StarCurve
from repro.core import SRSOptions
from repro.geometry import uniform_grid
from repro.kernels import GaussianKernelMatrix, LaplaceKernelMatrix


# ----------------------------------------------------------------------
# problems
# ----------------------------------------------------------------------
def test_equal_volume_problems_hash_identically():
    assert LaplaceVolumeProblem(24).fingerprint() == LaplaceVolumeProblem(24).fingerprint()


def test_grid_size_perturbs_fingerprint():
    assert LaplaceVolumeProblem(24).fingerprint() != LaplaceVolumeProblem(25).fingerprint()


def test_kernel_scalar_perturbs_fingerprint():
    assert (
        ScatteringProblem(16, 10.0).fingerprint()
        != ScatteringProblem(16, 10.5).fingerprint()
    )


def test_problem_class_reaches_fingerprint():
    """Same n, different workload class: never interchangeable."""
    assert (
        LaplaceVolumeProblem(16).fingerprint()
        != ScatteringProblem(16, 9.0).fingerprint()
    )


def test_equal_bie_problems_hash_identically():
    star = lambda: StarCurve(radius=1.0, amplitude=0.3, arms=5)  # noqa: E731
    assert (
        InteriorDirichletProblem(star(), 256).fingerprint()
        == InteriorDirichletProblem(star(), 256).fingerprint()
    )


def test_perturbed_curve_perturbs_fingerprint():
    a = InteriorDirichletProblem(StarCurve(amplitude=0.3), 256)
    b = InteriorDirichletProblem(StarCurve(amplitude=0.31), 256)
    c = InteriorDirichletProblem(Circle(), 256)
    assert len({a.fingerprint(), b.fingerprint(), c.fingerprint()}) == 3


def test_fingerprint_memoized_and_stable():
    prob = LaplaceVolumeProblem(16)
    fp = prob.fingerprint()
    assert prob.fingerprint() is fp  # memoized on the instance
    assert fp == fingerprint_problem(prob)  # and equal to a fresh hash


def test_fingerprint_is_hexdigest():
    fp = LaplaceVolumeProblem(16).fingerprint()
    assert isinstance(fp, str)
    int(fp, 16)
    assert len(fp) == 32  # blake2b-128


# ----------------------------------------------------------------------
# kernels
# ----------------------------------------------------------------------
def test_kernel_points_perturbation_detected():
    pts = uniform_grid(12)
    k1 = LaplaceKernelMatrix(pts, 1 / 12)
    moved = pts.copy()
    moved[7, 0] += 1e-9
    k2 = LaplaceKernelMatrix(moved, 1 / 12)
    assert fingerprint_kernel(k1) != fingerprint_kernel(k2)


def test_offdiagonal_only_scalar_detected():
    """The probe block catches parameters invisible to diag/weights."""
    pts = uniform_grid(12)
    k1 = GaussianKernelMatrix(pts, 1 / 12, sigma=0.1)
    k2 = GaussianKernelMatrix(pts, 1 / 12, sigma=0.2)
    assert np.array_equal(k1.diagonal(), k2.diagonal())  # the trap
    assert fingerprint_kernel(k1) != fingerprint_kernel(k2)


# ----------------------------------------------------------------------
# config setup keys
# ----------------------------------------------------------------------
def test_srs_strategies_share_setup_fingerprint():
    """direct/pcg/pgmres build the same RS-S product: one cache entry."""
    assert (
        setup_fingerprint(SolveConfig(method="direct"))
        == setup_fingerprint(SolveConfig(method="pcg"))
        == setup_fingerprint(SolveConfig(method="pgmres"))
    )


def test_refinement_fields_stay_out_of_setup_fingerprint():
    base = setup_fingerprint(SolveConfig(method="pcg"))
    assert base == setup_fingerprint(
        SolveConfig(method="pcg", tol=1e-4, maxiter=7, restart=3, operator="dense")
    )


def test_srs_options_reach_setup_fingerprint():
    base = setup_fingerprint(SolveConfig())
    assert base != setup_fingerprint(SolveConfig(srs=SRSOptions(tol=1e-9)))
    assert base != setup_fingerprint(SolveConfig(srs=SRSOptions(leaf_size=32)))
    # every SRSOptions field enters the key, debug flags included
    assert base != setup_fingerprint(SolveConfig(srs=SRSOptions(check_locality=True)))


def test_execution_reaches_setup_fingerprint():
    seq = setup_fingerprint(SolveConfig())
    par = setup_fingerprint(SolveConfig(execution="thread", ranks=4))
    shared = setup_fingerprint(SolveConfig(execution="shared", ranks=4))
    assert len({seq, par, shared}) == 3
    # ranks=None normalizes to the default rank count
    assert setup_fingerprint(SolveConfig(execution="thread")) == setup_fingerprint(
        SolveConfig(execution="thread", ranks=4)
    )


def test_non_srs_methods_have_distinct_families():
    assert setup_fingerprint(SolveConfig(method="cg")) == setup_fingerprint(
        SolveConfig(method="gmres")
    )
    assert setup_fingerprint(SolveConfig(method="dense_lu")) != setup_fingerprint(
        SolveConfig(method="direct")
    )
    assert setup_fingerprint(SolveConfig(method="block_jacobi")) != setup_fingerprint(
        SolveConfig(method="direct")
    )


def test_bare_protocol_problem_falls_back():
    """problem_fingerprint works without a fingerprint() method."""
    from repro.api.fingerprint import problem_fingerprint

    prob = LaplaceVolumeProblem(12)

    class Bare:
        kernel = prob.kernel
        n = prob.n
        is_symmetric = True
        factor_tree = None
        parallel_domain = None

        def operator(self):
            return prob.matvec

        def default_rhs(self):
            return prob.default_rhs()

        def random_rhs(self, seed=0, nrhs=1):
            return prob.random_rhs(seed, nrhs)

        def relres(self, x, b):
            return prob.relres(x, b)

    fp1, fp2 = problem_fingerprint(Bare()), problem_fingerprint(Bare())
    assert fp1 == fp2
