"""Tests for repro.geometry.points."""

import numpy as np
import pytest

from repro.geometry.domain import Square
from repro.geometry.points import (
    annulus_points,
    clustered_points,
    grid_spacing,
    random_points,
    uniform_grid,
)


def test_uniform_grid_shape_and_spacing():
    pts = uniform_grid(8)
    assert pts.shape == (64, 2)
    h = grid_spacing(8)
    assert h == pytest.approx(1.0 / 8)
    # first point is the center of the first cell
    assert np.allclose(pts[0], [h / 2, h / 2])
    # ordering: index k = i*m + j -> y varies fastest
    assert np.allclose(pts[1], [h / 2, 3 * h / 2])


def test_uniform_grid_covers_domain_interior():
    pts = uniform_grid(5)
    assert pts.min() > 0 and pts.max() < 1


def test_uniform_grid_custom_domain():
    dom = Square(2.0, 3.0, 4.0)
    pts = uniform_grid(4, domain=dom)
    assert dom.contains(pts).all()
    assert pts[:, 0].min() == pytest.approx(2.5)


def test_uniform_grid_rejects_bad_side():
    with pytest.raises(ValueError):
        uniform_grid(0)


def test_random_points_inside_domain_and_reproducible():
    a = random_points(50, seed=7)
    b = random_points(50, seed=7)
    assert np.array_equal(a, b)
    assert Square().contains(a).all()


def test_clustered_points_inside_domain():
    pts = clustered_points(200, n_clusters=3, seed=1)
    assert Square().contains(pts).all()
    assert pts.shape == (200, 2)


def test_annulus_points_radii():
    pts = annulus_points(500, r_inner=0.2, r_outer=0.4, seed=2)
    r = np.hypot(pts[:, 0] - 0.5, pts[:, 1] - 0.5)
    assert r.min() >= 0.2 - 1e-12
    assert r.max() <= 0.4 + 1e-12
