"""Tests for the perfect quadtree: structure, neighbor sets, invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.geometry import Square, uniform_grid, random_points
from repro.tree import QuadTree


@pytest.fixture(scope="module")
def tree():
    return QuadTree(uniform_grid(16), 3)


def test_basic_counts(tree):
    assert tree.nlevels == 3
    assert tree.nside(3) == 8
    assert tree.nboxes(3) == 64
    assert tree.N == 256


def test_points_partition(tree):
    seen = np.zeros(tree.N, dtype=int)
    for c in tree.nonempty_leaves():
        seen[tree.leaf_points(*c)] += 1
    assert np.all(seen == 1)


def test_leaf_assignment_geometric(tree):
    for c in tree.nonempty_leaves():
        pts = tree.points[tree.leaf_points(*c)]
        side = tree.box_side(tree.nlevels)
        lo = np.array(c) * side
        assert np.all(pts >= lo - 1e-12)
        assert np.all(pts <= lo + side + 1e-12)


def test_uniform_grid_fills_leaves_evenly(tree):
    sizes = {len(tree.leaf_points(*c)) for c in tree.nonempty_leaves()}
    assert sizes == {4}  # 256 points over 64 leaves


def test_neighbors_symmetric(tree):
    for level in (1, 2, 3):
        for box in tree.boxes(level):
            for nb in tree.neighbors(level, *box):
                assert box in tree.neighbors(level, *nb)


def test_neighbor_count_bounds(tree):
    for box in tree.boxes(3):
        nbrs = tree.neighbors(3, *box)
        assert 3 <= len(nbrs) <= 8  # paper: |N(B)| <= 8


def test_dist2_is_exactly_distance_two(tree):
    for box in tree.boxes(3):
        for mb in tree.dist2_neighbors(3, *box):
            assert QuadTree.chebyshev_distance(box, mb) == 2


def test_near_and_self_contains_box(tree):
    for box in tree.boxes(2):
        disk = tree.near_and_self(2, *box)
        assert box in disk
        assert set(tree.neighbors(2, *box)) == set(disk) - {box}


def test_m_box_count_bound(tree):
    # |M(B)| <= 16 (Fig. 2a)
    for box in tree.boxes(3):
        assert len(tree.dist2_neighbors(3, *box)) <= 16


def test_parent_child_roundtrip(tree):
    for level in (1, 2):
        for box in tree.boxes(level):
            for ch in tree.children(level, *box):
                assert tree.parent(level + 1, *ch) == box


def test_children_morton_order(tree):
    kids = tree.children(1, 1, 1)
    assert kids == [(2, 2), (2, 3), (3, 2), (3, 3)]


def test_root_has_no_parent(tree):
    with pytest.raises(ValueError):
        tree.parent(0, 0, 0)


def test_leaves_have_no_children(tree):
    with pytest.raises(ValueError):
        tree.children(3, 0, 0)


def test_box_geometry(tree):
    assert tree.box_side(0) == 1.0
    assert tree.box_side(3) == pytest.approx(1.0 / 8)
    assert np.allclose(tree.box_center(1, 0, 0), [0.25, 0.25])
    assert np.allclose(tree.box_center(1, 1, 1), [0.75, 0.75])


def test_for_leaf_size_targets_occupancy():
    pts = uniform_grid(32)  # N = 1024
    t = QuadTree.for_leaf_size(pts, 64)
    assert t.nlevels == 2  # 16 leaves x 64 points
    assert t.max_leaf_occupancy() == 64


def test_for_leaf_size_minimum_levels():
    t = QuadTree.for_leaf_size(uniform_grid(2), 64)
    assert t.nlevels >= 2


def test_points_outside_explicit_domain_rejected():
    with pytest.raises(ValueError):
        QuadTree(np.array([[1.5, 0.5]]), 2, domain=Square())


def test_default_domain_falls_back_to_bounding_box():
    """Points outside the unit square get a bounding-box domain (BIE
    curves and other off-grid geometries); points inside keep the unit
    square so existing volume discretizations are unchanged."""
    pts = np.array([[1.5, 0.5], [-0.25, 2.0], [0.0, 0.0]])
    tree = QuadTree(pts, 2)
    assert tree.domain.contains(pts).all()
    assert tree.domain.size < 3.0
    inside = QuadTree(np.array([[0.25, 0.75], [0.5, 0.5]]), 2)
    assert inside.domain == Square()


def test_morton_point_order_sorts_by_leaf(tree):
    order = tree.morton_point_order()
    leaves = [tree.leaf_of_point(i) for i in order]
    # leaf sequence must be non-decreasing in Morton code
    from repro.geometry.morton import morton_encode

    codes = [morton_encode(ix, iy) for ix, iy in leaves]
    assert codes == sorted(codes)


@settings(max_examples=20, deadline=None)
@given(st.integers(min_value=1, max_value=200), st.integers(min_value=2, max_value=4))
def test_random_cloud_partition_property(n, nlevels):
    pts = random_points(n, seed=n)
    t = QuadTree(pts, nlevels)
    seen = np.zeros(n, dtype=int)
    for c in t.nonempty_leaves():
        seen[t.leaf_points(*c)] += 1
    assert np.all(seen == 1)
