"""Tests for the repro.analysis static analyzer.

Golden fixtures per checker (a bad snippet producing a pinned finding,
and its corrected form producing none), the suppression and baseline
round-trips, the JSON report schema, the CLI exit contract — and the
meta-test: the live ``src/`` tree is finding-free.
"""

from __future__ import annotations

import json
from pathlib import Path
from textwrap import dedent

import pytest

from repro.analysis import analyze_paths, load_baseline, render_json
from repro.analysis.baseline import filter_baseline, save_baseline
from repro.analysis.cli import main
from repro.analysis.core import Finding, all_checkers

REPO = Path(__file__).resolve().parents[1]

README_STUB = "# fixture\n\n`REPRO_SEED` seeds things.\n"


def write_project(tmp_path: Path, files: dict[str, str], readme: str = README_STUB):
    tmp_path.mkdir(parents=True, exist_ok=True)
    (tmp_path / "README.md").write_text(readme, encoding="utf-8")
    for rel, text in files.items():
        path = tmp_path / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(dedent(text), encoding="utf-8")
    return tmp_path / "src"


def run(tmp_path, files, select, readme: str = README_STUB):
    src = write_project(tmp_path, files, readme=readme)
    return analyze_paths([src], select=select)


def by_checker(result, name):
    return [f for f in result.findings if f.checker == name]


# ----------------------------------------------------------------------
# framework
# ----------------------------------------------------------------------
def test_all_checkers_registered():
    names = set(all_checkers())
    assert names == {
        "shm-lifecycle", "env-discipline", "lock-discipline",
        "determinism", "obs-conventions", "dead-code",
    }


def test_syntax_error_becomes_parse_finding(tmp_path):
    result = run(tmp_path, {"src/repro/broken.py": "def f(:\n"}, ["dead-code"])
    assert [f.checker for f in result.findings] == ["parse"]
    assert result.findings[0].line == 1


def test_unknown_select_rejected(tmp_path):
    write_project(tmp_path, {"src/repro/ok.py": "X = 1\n"})
    with pytest.raises(ValueError, match="no-such-checker"):
        analyze_paths([tmp_path / "src"], select=["no-such-checker"])


# ----------------------------------------------------------------------
# shm-lifecycle
# ----------------------------------------------------------------------
SHM_BAD = """\
    from multiprocessing.shared_memory import SharedMemory

    def grab(n):
        shm = SharedMemory(create=True, size=n)
        return shm

    def drop(shm):
        shm.unlink()
"""


def test_shm_lifecycle_bad(tmp_path):
    result = run(tmp_path, {"src/repro/vmpi/rogue.py": SHM_BAD}, ["shm-lifecycle"])
    symbols = {(f.symbol, f.line) for f in result.findings}
    assert ("raw-create", 4) in symbols
    assert ("raw-unlink", 8) in symbols
    assert len(result.findings) == 2


def test_shm_lifecycle_codec_rules(tmp_path):
    codec = """\
        from multiprocessing.shared_memory import SharedMemory

        def _create_shm(n):
            return SharedMemory(create=True, size=n)

        def rogue_create(n):
            return SharedMemory(create=True, size=n)

        def encode(n, created):
            shm = _create_shm(n)
            created.append(shm.name)
            return shm

        def forgetful(n):
            return _create_shm(n)
    """
    result = run(
        tmp_path, {"src/repro/vmpi/process_backend.py": codec}, ["shm-lifecycle"]
    )
    symbols = {f.symbol for f in result.findings}
    assert "create-outside-helper" in symbols
    assert "unregistered-create:forgetful" in symbols
    assert not any("encode" in s for s in symbols)
    assert len(result.findings) == 2


def test_shm_lifecycle_clean(tmp_path):
    good = """\
        def send(payload, codec):
            return codec.encode(payload)
    """
    result = run(tmp_path, {"src/repro/vmpi/user.py": good}, ["shm-lifecycle"])
    assert result.clean


# ----------------------------------------------------------------------
# env-discipline
# ----------------------------------------------------------------------
CONFIG_FIXTURE = """\
    import os

    def env_int(name, default):
        return int(os.environ.get(name, default))

    def seed():
        return env_int("REPRO_SEED", 0)

    def undocumented():
        return env_int("REPRO_GHOST", 1)
"""


def test_env_discipline_reads_and_literals(tmp_path):
    rogue = """\
        import os

        def peek():
            return os.environ.get("REPRO_SEED", "")

        DOC = "set REPRO_TYPO to tune"
    """
    result = run(
        tmp_path,
        {
            "src/repro/util/config.py": CONFIG_FIXTURE,
            "src/repro/rogue.py": rogue,
        },
        ["env-discipline"],
    )
    symbols = {f.symbol for f in result.findings}
    assert "environ" in symbols            # os.environ outside util.config
    assert "unknown:REPRO_TYPO" in symbols  # literal with no accessor
    assert "undocumented:REPRO_GHOST" in symbols  # knob missing from README
    assert "unknown:REPRO_SEED" not in symbols    # real knob literal is fine


def test_env_discipline_prefix_literal_ok(tmp_path):
    doc = '''\
        """Knobs: ``REPRO_SE*`` family."""
    '''
    result = run(
        tmp_path,
        {
            "src/repro/util/config.py": CONFIG_FIXTURE.replace(
                "REPRO_SEED", "REPRO_SE_ED"
            ),
            "src/repro/doc.py": doc.replace("REPRO_SE*", "REPRO_SE_*"),
        },
        ["env-discipline"],
        readme="# fixture\n\nREPRO_SE_ED and REPRO_GHOST.\n",
    )
    assert not [f for f in result.findings if f.symbol.startswith("unknown:")]


def test_env_discipline_clean(tmp_path):
    result = run(
        tmp_path,
        {"src/repro/util/config.py": CONFIG_FIXTURE},
        ["env-discipline"],
        readme="# fixture\n\nREPRO_SEED and REPRO_GHOST are documented.\n",
    )
    assert result.clean


# ----------------------------------------------------------------------
# determinism
# ----------------------------------------------------------------------
DETERMINISM_BAD = """\
    import time
    import numpy as np

    def stamp():
        return time.time()

    def draw():
        return np.random.rand(3)

    def gen():
        return np.random.default_rng()

    def buf(n):
        out = np.empty(n)
        return out
"""


def test_determinism_bad(tmp_path):
    result = run(
        tmp_path, {"src/repro/core/noise.py": DETERMINISM_BAD}, ["determinism"]
    )
    got = {(f.symbol, f.line) for f in result.findings}
    assert ("wall-clock", 5) in got
    assert ("np-legacy-rng", 8) in got
    assert ("unseeded-rng", 11) in got
    assert ("empty-escape", 14) in got
    assert len(result.findings) == 4


def test_determinism_good(tmp_path):
    good = """\
        import time
        import numpy as np

        def stamp():
            return time.perf_counter()

        def gen(seed):
            return np.random.default_rng(seed)

        def buf(n):
            out = np.empty(n)
            out[:] = 0.0
            return out

        def sentinel():
            return np.empty(0)
    """
    result = run(tmp_path, {"src/repro/linalg/ok.py": good}, ["determinism"])
    assert result.clean


def test_determinism_scoped_to_numerics(tmp_path):
    result = run(
        tmp_path, {"src/repro/util/clock.py": DETERMINISM_BAD}, ["determinism"]
    )
    assert result.clean  # util is not a bitwise-parity package


def test_determinism_local_time_import(tmp_path):
    bad = """\
        def factor_level(tree, level):
            import time as _time
            t0 = _time.perf_counter()
            return t0
    """
    result = run(tmp_path, {"src/repro/core/sweep.py": bad}, ["determinism"])
    got = {(f.symbol, f.line) for f in result.findings}
    assert ("local-time-import", 2) in got
    assert len(result.findings) == 1
    # the module-level `import time` in DETERMINISM_BAD stays un-flagged
    # (test_determinism_bad pins the exact finding count)


# ----------------------------------------------------------------------
# lock-discipline
# ----------------------------------------------------------------------
def test_lock_guarded_attr_written_unguarded(tmp_path):
    bad = """\
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def add(self, x):
                with self._lock:
                    self._items.append(x)

            def reset(self):
                self._items = []
    """
    result = run(tmp_path, {"src/repro/service/box.py": bad}, ["lock-discipline"])
    assert [f.symbol for f in result.findings] == ["Box._items"]
    assert result.findings[0].line == 13


def test_lock_guarded_attr_private_helper_propagation(tmp_path):
    good = """\
        import threading

        class Box:
            def __init__(self):
                self._lock = threading.Lock()
                self._items = []

            def add(self, x):
                with self._lock:
                    self._put(x)

            def _put(self, x):
                self._items.append(x)

            def reset_locked(self):
                self._items = []
    """
    result = run(tmp_path, {"src/repro/service/box.py": good}, ["lock-discipline"])
    assert result.clean


def test_lock_order_cycle_detected_and_suppressible(tmp_path):
    bad = """\
        import threading

        A_LOCK = threading.Lock()
        B_LOCK = threading.Lock()

        def forward():
            with A_LOCK:
                with B_LOCK:
                    pass

        def backward():
            with B_LOCK:
                with A_LOCK:
                    pass
    """
    result = run(tmp_path, {"src/repro/service/order.py": bad}, ["lock-discipline"])
    cycles = [f for f in result.findings if f.symbol.startswith("cycle:")]
    assert len(cycles) == 1
    assert "A_LOCK" in cycles[0].message and "B_LOCK" in cycles[0].message

    fixed = bad.replace(
        "                with A_LOCK:",
        "                with A_LOCK:"
        "  # repro: allow(lock-discipline) -- fixture edge",
    )
    assert fixed != bad
    result2 = run(
        tmp_path / "sup", {"src/repro/service/order.py": fixed}, ["lock-discipline"]
    )
    assert not [f for f in result2.findings if f.symbol.startswith("cycle:")]


def test_lock_order_via_call_resolution(tmp_path):
    bad = """\
        import threading

        REG_LOCK = threading.Lock()

        def _forget():
            with REG_LOCK:
                pass

        class Pool:
            def __init__(self):
                self._lock = threading.Lock()

            def shutdown(self):
                with self._lock:
                    _forget()

        def scan(pool):
            with REG_LOCK:
                pool.shutdown()
    """
    result = run(tmp_path, {"src/repro/vmpi/pools.py": bad}, ["lock-discipline"])
    cycles = [f for f in result.findings if f.symbol.startswith("cycle:")]
    assert len(cycles) == 1
    assert "Pool._lock" in cycles[0].message and "REG_LOCK" in cycles[0].message


def test_lock_foreign_instance_reacquire_flagged(tmp_path):
    bad = """\
        import threading

        class Pool:
            def __init__(self):
                self._lock = threading.RLock()

            def shutdown(self):
                with self._lock:
                    pass

            def revive(self, other):
                with self._lock:
                    self.shutdown()
                    other.shutdown()
    """
    result = run(tmp_path, {"src/repro/vmpi/pools.py": bad}, ["lock-discipline"])
    foreign = [f for f in result.findings if f.symbol.startswith("foreign:")]
    assert len(foreign) == 1  # self.shutdown() is a legal reentrant re-acquire
    assert foreign[0].line == 14


# ----------------------------------------------------------------------
# obs-conventions
# ----------------------------------------------------------------------
def test_obs_conventions_bad(tmp_path):
    bad = """\
        from repro.obs import REGISTRY, trace

        C1 = REGISTRY.counter("repro_events", "desc")
        G1 = REGISTRY.gauge("repro_bytes_total", "desc")
        H1 = REGISTRY.histogram("Repro_Latency", "desc", buckets=(1,))

        def f(name):
            with trace.span("Factor.Level"):
                pass
            with trace.span(name):
                pass
    """
    result = run(tmp_path, {"src/repro/obs/bad.py": bad}, ["obs-conventions"])
    symbols = {f.symbol for f in result.findings}
    assert "metric:repro_events" in symbols          # counter missing _total
    assert "metric:repro_bytes_total" in symbols     # gauge with _total
    assert "metric:Repro_Latency" in symbols         # grammar violation
    assert "span:Factor.Level" in symbols            # span grammar violation
    assert "dynamic-span" in symbols                 # non-literal span name
    assert len(result.findings) == 5


def test_obs_conventions_span_attrs(tmp_path):
    bad = """\
        from repro.obs import trace

        def f(attrs):
            with trace.span("factor.batch", **attrs):
                pass
            with trace.span("factor.batch", BadName=1):
                pass
            with trace.span("factor.batch", level=2, n_boxes=3):
                pass
    """
    result = run(tmp_path, {"src/repro/obs/attrs.py": bad}, ["obs-conventions"])
    got = {(f.symbol, f.line) for f in result.findings}
    assert ("span-attrs:factor.batch", 4) in got       # **-unpacking
    assert ("span-attr:factor.batch.BadName", 6) in got  # attr name grammar
    assert len(result.findings) == 2  # well-named kwargs stay clean


def test_obs_conventions_conflict(tmp_path):
    files = {
        "src/repro/obs/a.py":
            'from repro.obs import REGISTRY\n'
            'C = REGISTRY.counter("repro_x_total", "d", labelnames=("k",))\n',
        "src/repro/obs/b.py":
            'from repro.obs import REGISTRY\n'
            'C = REGISTRY.counter("repro_x_total", "d", labelnames=("other",))\n',
    }
    result = run(tmp_path, files, ["obs-conventions"])
    assert [f.symbol for f in result.findings] == ["conflict:repro_x_total"]


def test_obs_conventions_clean(tmp_path):
    good = """\
        from repro.obs import REGISTRY, trace

        C = REGISTRY.counter("repro_solve_total", "d", labelnames=("kind",))
        H = REGISTRY.histogram("repro_span_seconds", "d", buckets=(1,))

        def f():
            with trace.span("factor.skeletonize", level=2):
                pass
    """
    result = run(tmp_path, {"src/repro/obs/good.py": good}, ["obs-conventions"])
    assert result.clean


def test_obs_conventions_subsystem_prefix(tmp_path):
    files = {
        "src/repro/obs/health.py": """\
            from repro.obs.metrics import REGISTRY

            GOOD = REGISTRY.counter("repro_health_boxes_total", "d")
            BAD = REGISTRY.gauge("repro_rank_bytes", "d")
        """,
        "src/repro/obs/other.py": """\
            from repro.obs.metrics import REGISTRY

            FREE = REGISTRY.gauge("repro_rank_bytes", "d")
        """,
    }
    result = run(tmp_path, files, ["obs-conventions"])
    findings = by_checker(result, "obs-conventions")
    # only the namespaced module is held to its prefix
    assert [(f.symbol, f.path.endswith("health.py")) for f in findings] == [
        ("prefix:repro_rank_bytes", True),
    ]


def test_obs_conventions_knob_registry_mismatch(tmp_path):
    files = {
        "src/repro/obs/__init__.py": """\
            OBS_KNOBS = (
                "REPRO_OBS",
                "REPRO_OBS_STALE",
                "REPRO_NOT_OBS",
            )
        """,
        "src/repro/util/config.py": """\
            import os

            def obs_enabled():
                return os.environ.get("REPRO_OBS", "off") == "on"

            def obs_unlisted():
                return os.environ.get("REPRO_OBS_UNLISTED")
        """,
    }
    result = run(tmp_path, files, ["obs-conventions"])
    symbols = {f.symbol for f in by_checker(result, "obs-conventions")}
    assert symbols == {
        "knob:REPRO_OBS_STALE",      # declared but never read
        "knob:REPRO_NOT_OBS",        # not a REPRO_OBS* name
        "knob:REPRO_OBS_UNLISTED",   # read but not registered
    }


def test_obs_conventions_knob_registry_missing_and_clean(tmp_path):
    config = """\
        import os

        def obs_enabled():
            return os.environ.get("REPRO_OBS", "off") == "on"
    """
    result = run(tmp_path, {
        "src/repro/obs/__init__.py": "X = 1\n",
        "src/repro/util/config.py": config,
    }, ["obs-conventions"])
    assert [f.symbol for f in by_checker(result, "obs-conventions")] == [
        "obs-knobs-missing",
    ]
    result = run(tmp_path, {
        "src/repro/obs/__init__.py": 'OBS_KNOBS = ("REPRO_OBS",)\n',
        "src/repro/util/config.py": config,
    }, ["obs-conventions"])
    assert result.clean


# ----------------------------------------------------------------------
# dead-code
# ----------------------------------------------------------------------
def test_dead_code_unused_import_and_private(tmp_path):
    files = {
        "src/repro/util/helpers.py": """\
            import os
            import json

            def _unused_helper():
                return 1

            def path_of(p):
                return os.fspath(p)
        """,
    }
    result = run(tmp_path, files, ["dead-code"])
    symbols = {f.symbol for f in result.findings}
    assert symbols == {"import:json", "private:_unused_helper"}


def test_dead_code_cross_module_references_keep_alive(tmp_path):
    files = {
        "src/repro/util/helpers.py": """\
            def _shared():
                return 1

            _STATE = {}
        """,
        "src/repro/util/client.py": """\
            from repro.util.helpers import _shared
            from repro.util import helpers

            def go():
                return _shared() + len(helpers._STATE)
        """,
    }
    result = run(tmp_path, files, ["dead-code"])
    assert result.clean


def test_dead_code_init_reexports_exempt(tmp_path):
    files = {
        "src/repro/util/__init__.py": "from repro.util.helpers import thing\n",
        "src/repro/util/helpers.py": "def thing():\n    return 1\n",
    }
    result = run(tmp_path, files, ["dead-code"])
    assert result.clean


# ----------------------------------------------------------------------
# suppression round-trip
# ----------------------------------------------------------------------
def test_suppression_with_reason(tmp_path):
    src = """\
        import json  # repro: allow(dead-code) -- fixture keeps it

        X = 1
    """
    result = run(tmp_path, {"src/repro/util/s.py": src}, ["dead-code"])
    assert result.clean
    assert [f.checker for f in result.suppressed] == ["dead-code"]


def test_suppression_without_reason_is_reported(tmp_path):
    src = """\
        import json  # repro: allow(dead-code)

        X = 1
    """
    result = run(tmp_path, {"src/repro/util/s.py": src}, ["dead-code"])
    checkers = [f.checker for f in result.findings]
    assert checkers == ["suppression"]
    assert "reason" in result.findings[0].message


def test_suppression_unknown_checker_is_reported(tmp_path):
    src = """\
        X = 1  # repro: allow(made-up-checker) -- because

        Y = 2
    """
    result = run(tmp_path, {"src/repro/util/s.py": src}, ["dead-code"])
    assert [f.checker for f in result.findings] == ["suppression"]
    assert "made-up-checker" in result.findings[0].message


# ----------------------------------------------------------------------
# baseline round-trip
# ----------------------------------------------------------------------
def test_baseline_roundtrip(tmp_path):
    files = {"src/repro/util/b.py": "import json\n\nX = 1\n"}
    src = write_project(tmp_path, files)
    first = analyze_paths([src], select=["dead-code"])
    assert len(first.findings) == 1

    baseline_file = tmp_path / "baseline.json"
    save_baseline(first.findings, baseline_file)
    entries = load_baseline(baseline_file)
    second = analyze_paths([src], select=["dead-code"], baseline=entries)
    assert second.clean
    assert len(second.baselined) == 1


def test_baseline_is_count_aware():
    f1 = Finding("a.py", 1, 0, "dead-code", "m", "import:json")
    f2 = Finding("a.py", 9, 0, "dead-code", "m", "import:json")
    entries = [f1.to_dict()]
    new, matched = filter_baseline([f1, f2], entries)
    assert len(matched) == 1 and len(new) == 1


def test_baseline_survives_line_drift():
    recorded = Finding("a.py", 3, 0, "dead-code", "m", "import:json")
    drifted = Finding("a.py", 42, 7, "dead-code", "m", "import:json")
    new, matched = filter_baseline([drifted], [recorded.to_dict()])
    assert not new and len(matched) == 1


def test_baseline_rejects_bad_version(tmp_path):
    path = tmp_path / "b.json"
    path.write_text(json.dumps({"version": 99, "findings": []}))
    with pytest.raises(ValueError, match="version"):
        load_baseline(path)


# ----------------------------------------------------------------------
# reporters / CLI
# ----------------------------------------------------------------------
def test_json_report_schema(tmp_path):
    src = write_project(tmp_path, {"src/repro/util/j.py": "import json\nX = 1\n"})
    result = analyze_paths([src], select=["dead-code"])
    doc = json.loads(render_json(result))
    assert doc["schema"] == 1
    assert doc["ok"] is False
    assert doc["checkers"] == ["dead-code"]
    assert doc["counts"] == {"dead-code": 1}
    (entry,) = doc["findings"]
    assert set(entry) == {"path", "line", "col", "checker", "message", "symbol"}
    assert entry["path"].endswith("j.py")
    assert doc["suppressed"] == [] and doc["baselined"] == []


def test_cli_exit_codes_and_output(tmp_path, capsys):
    src = write_project(tmp_path, {"src/repro/util/c.py": "import json\nX = 1\n"})
    out_file = tmp_path / "findings.json"
    assert main([str(src), "--select", "dead-code",
                 "--output", str(out_file)]) == 1
    assert "FAIL: 1 finding(s)" in capsys.readouterr().out
    assert json.loads(out_file.read_text())["ok"] is False

    clean = write_project(tmp_path / "ok", {"src/repro/util/c.py": "X = 1\n"})
    assert main([str(clean), "--select", "dead-code"]) == 0
    assert "OK: 0 finding(s)" in capsys.readouterr().out

    assert main(["--select", "nope", str(src)]) == 2


def test_cli_write_then_use_baseline(tmp_path, capsys):
    src = write_project(tmp_path, {"src/repro/util/c.py": "import json\nX = 1\n"})
    baseline = tmp_path / "baseline.json"
    assert main([str(src), "--select", "dead-code",
                 "--write-baseline", str(baseline)]) == 0
    capsys.readouterr()
    assert main([str(src), "--select", "dead-code",
                 "--baseline", str(baseline)]) == 0
    assert "1 baselined" in capsys.readouterr().out


# ----------------------------------------------------------------------
# the gate itself
# ----------------------------------------------------------------------
def test_live_src_tree_is_finding_free():
    """The committed tree holds the zero-finding invariant."""
    result = analyze_paths([REPO / "src"])
    details = "\n".join(
        f"{f.location()}: [{f.checker}] {f.message}" for f in result.findings
    )
    assert result.clean, f"src/ has findings:\n{details}"


def test_live_lock_order_graph_is_acyclic():
    result = analyze_paths([REPO / "src"], select=["lock-discipline"])
    cycles = [f for f in result.findings if f.symbol.startswith("cycle:")]
    assert not cycles
